/**
 * @file
 * Tests for scoped trace spans and Chrome trace-event export:
 * disabled-mode cost, determinism under the virtual clock, JSON
 * validity, and category coverage across instrumented subsystems.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/thread_pool.hh"
#include "moe/gate.hh"
#include "net/flow.hh"
#include "obs/json.hh"
#include "obs/registry.hh"
#include "obs/trace.hh"
#include "pipeline/schedule.hh"

namespace dsv3::obs {
namespace {

/** Restore global trace state no matter how a test exits. */
struct TraceGuard
{
    TraceGuard()
    {
        clearTrace();
        setTraceClock(TraceClock::VIRTUAL);
    }

    ~TraceGuard()
    {
        setTraceEnabled(false);
        setTraceClock(TraceClock::WALL);
        setTraceMaxEventsPerThread(0);
        clearTrace();
    }
};

TEST(Trace, DisabledRecordsNothing)
{
    TraceGuard guard;
    setTraceEnabled(false);
    {
        DSV3_TRACE_SPAN("t.disabled.span", "k", 1.0);
        DSV3_TRACE_SPAN("t.disabled.other");
    }
    EXPECT_EQ(traceEventCount(), 0u);
}

TEST(Trace, RecordsCompleteEventsWithArgs)
{
    TraceGuard guard;
    setTraceEnabled(true);
    {
        DSV3_TRACE_SPAN("t.unit.outer", "n", 3, "label", "x");
        DSV3_TRACE_SPAN("t.unit.inner");
    }
    setTraceEnabled(false);
    EXPECT_EQ(traceEventCount(), 2u);

    JsonValue doc;
    std::string err;
    ASSERT_TRUE(parseJson(chromeTraceJson(), &doc, &err)) << err;
    const JsonValue *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->array().size(), 2u);
    for (const JsonValue &e : events->array()) {
        EXPECT_EQ(e.find("ph")->str(), "X");
        EXPECT_EQ(e.find("cat")->str(), "t");
        EXPECT_GE(e.find("dur")->number(), 0.0);
    }
    // Inner span closes first, so it is recorded first.
    EXPECT_EQ(events->array()[0].find("name")->str(), "t.unit.inner");
    const JsonValue &outer = events->array()[1];
    EXPECT_EQ(outer.find("name")->str(), "t.unit.outer");
    EXPECT_DOUBLE_EQ(outer.find("args")->find("n")->number(), 3.0);
    EXPECT_EQ(outer.find("args")->find("label")->str(), "x");
}

TEST(Trace, ClearTraceDropsEventsAndRestartsClock)
{
    TraceGuard guard;
    setTraceEnabled(true);
    {
        DSV3_TRACE_SPAN("t.clear.span");
    }
    EXPECT_EQ(traceEventCount(), 1u);
    clearTrace();
    EXPECT_EQ(traceEventCount(), 0u);
    {
        DSV3_TRACE_SPAN("t.clear.span");
    }
    setTraceEnabled(false);
    EXPECT_EQ(traceEventCount(), 1u);
}

/** Single-threaded instrumented workload touching four subsystems. */
void
runInstrumentedWorkload()
{
    // pipeline: schedule computation.
    pipeline::ScheduleParams sp;
    sp.stages = 4;
    sp.microbatches = 8;
    sp.chunk.f = 1.0;
    sp.chunk.b = 2.0;
    sp.chunk.w = 1.0;
    pipeline::computeSchedule(sp);

    // moe: route a few tokens.
    moe::GateConfig gc;
    gc.experts = 16;
    gc.topK = 4;
    moe::TopKGate gate(gc);
    std::vector<double> logits(gc.experts);
    for (std::size_t i = 0; i < logits.size(); ++i)
        logits[i] = (double)(i % 5);
    gate.route(logits);

    // net: two flows through a trivial two-node fabric.
    net::Graph g;
    net::NodeId a = g.addNode(net::NodeKind::GPU, "a");
    net::NodeId b = g.addNode(net::NodeKind::GPU, "b");
    g.addDuplex(a, b, 10.0, 1e-6);
    std::vector<net::Flow> flows = {{a, b, 100.0, 1, {}, {}},
                                    {b, a, 50.0, 2, {}, {}}};
    assignPaths(g, flows, net::RoutePolicy::ECMP);
    simulateFlows(g, flows);

    // common: a parallelFor span (the loop body itself is trivial).
    parallelFor(4, [](std::size_t) {});
}

TEST(Trace, CoversInstrumentedSubsystems)
{
    TraceGuard guard;
    setTraceEnabled(true);
    runInstrumentedWorkload();
    setTraceEnabled(false);

    JsonValue doc;
    std::string err;
    ASSERT_TRUE(parseJson(chromeTraceJson(), &doc, &err)) << err;
    std::set<std::string> cats;
    for (const JsonValue &e : doc.find("traceEvents")->array())
        cats.insert(e.find("cat")->str());
    EXPECT_TRUE(cats.count("pipeline"));
    EXPECT_TRUE(cats.count("moe"));
    EXPECT_TRUE(cats.count("net"));
    EXPECT_TRUE(cats.count("common"));
    EXPECT_GE(cats.size(), 4u);
}

TEST(Trace, VirtualClockIsDeterministicAcrossRuns)
{
    TraceGuard guard;

    auto capture = [&] {
        clearTrace();
        setTraceEnabled(true);
        // Single-threaded portion only: thread scheduling would
        // legitimately reorder pool events between runs.
        pipeline::ScheduleParams sp;
        sp.stages = 4;
        sp.microbatches = 8;
        sp.chunk.f = 1.0;
        sp.chunk.b = 2.0;
        pipeline::computeSchedule(sp);
        {
            DSV3_TRACE_SPAN("t.det.a", "i", 1);
            DSV3_TRACE_SPAN("t.det.b");
        }
        setTraceEnabled(false);
        return chromeTraceJson();
    };

    std::string first = capture();
    std::string second = capture();
    EXPECT_EQ(first, second) << "virtual-clock trace must be "
                                "byte-identical across identical runs";
    EXPECT_GT(traceEventCount(), 0u);
}

TEST(Trace, BufferCapDropsAndCounts)
{
    TraceGuard guard;
    std::size_t dropped_before = traceDroppedCount();
    std::uint64_t counter_before =
        Registry::global().counter("obs.trace.dropped").value();
    setTraceMaxEventsPerThread(4);
    setTraceEnabled(true);
    for (int i = 0; i < 10; ++i) {
        DSV3_TRACE_SPAN("t.cap.span");
    }
    setTraceEnabled(false);
    EXPECT_EQ(traceEventCount(), 4u);
    EXPECT_EQ(traceDroppedCount(), dropped_before + 6u);
    EXPECT_EQ(Registry::global().counter("obs.trace.dropped").value(),
              counter_before + 6u);

    // The capped buffer still exports valid JSON.
    JsonValue doc;
    ASSERT_TRUE(parseJson(chromeTraceJson(), &doc));
    EXPECT_EQ(doc.find("traceEvents")->array().size(), 4u);

    // clearTrace() resets the drop count; 0 restores the default cap.
    clearTrace();
    EXPECT_EQ(traceDroppedCount(), 0u);
    setTraceMaxEventsPerThread(0);
    EXPECT_GE(traceMaxEventsPerThread(), 1u << 20);
}

TEST(Trace, WallClockTimestampsAreMonotonic)
{
    TraceGuard guard;
    setTraceClock(TraceClock::WALL);
    setTraceEnabled(true);
    {
        DSV3_TRACE_SPAN("t.wall.a");
        DSV3_TRACE_SPAN("t.wall.b");
    }
    setTraceEnabled(false);

    JsonValue doc;
    ASSERT_TRUE(parseJson(chromeTraceJson(), &doc));
    for (const JsonValue &e : doc.find("traceEvents")->array()) {
        EXPECT_GE(e.find("ts")->number(), 0.0);
        EXPECT_GE(e.find("dur")->number(), 0.0);
    }
}

} // namespace
} // namespace dsv3::obs
