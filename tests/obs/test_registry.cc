/**
 * @file
 * Tests for the stats registry: kinds, get-or-create semantics,
 * duplicate-name panics, snapshots and the JSON round-trip.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "obs/json.hh"
#include "obs/registry.hh"

namespace dsv3::obs {
namespace {

TEST(Counter, IncAndReset)
{
    Registry reg;
    Counter &c = reg.counter("t.counter.basic");
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetMaxAdd)
{
    Registry reg;
    Gauge &g = reg.gauge("t.gauge.basic");
    g.set(2.5);
    EXPECT_DOUBLE_EQ(g.value(), 2.5);
    g.max(1.0); // lower: no change
    EXPECT_DOUBLE_EQ(g.value(), 2.5);
    g.max(7.0);
    EXPECT_DOUBLE_EQ(g.value(), 7.0);
    g.add(3.0);
    EXPECT_DOUBLE_EQ(g.value(), 10.0);
}

TEST(Distribution, PreservesHistogramUnderOverflow)
{
    Registry reg;
    Distribution &d = reg.distribution("t.dist.basic", 0.0, 10.0, 10);
    d.add(-1.0); // underflow
    d.add(0.5);  // bin 0
    d.add(9.5);  // bin 9
    d.add(12.0); // overflow
    EXPECT_EQ(d.count(), 4u);
    EXPECT_EQ(d.underflow(), 1u);
    EXPECT_EQ(d.overflow(), 1u);
    EXPECT_EQ(d.binCount(0), 1u);
    EXPECT_EQ(d.binCount(9), 1u);
    EXPECT_DOUBLE_EQ(d.min(), -1.0);
    EXPECT_DOUBLE_EQ(d.max(), 12.0);
    EXPECT_DOUBLE_EQ(d.mean(), (-1.0 + 0.5 + 9.5 + 12.0) / 4.0);
}

TEST(Quantile, TracksMomentsAndPercentiles)
{
    Registry reg;
    Quantile &q = reg.quantile("t.quant.basic");
    EXPECT_EQ(q.count(), 0u);
    for (int i = 1; i <= 1000; ++i)
        q.add((double)i);
    EXPECT_EQ(q.count(), 1000u);
    EXPECT_DOUBLE_EQ(q.mean(), 500.5);
    EXPECT_DOUBLE_EQ(q.min(), 1.0);
    EXPECT_DOUBLE_EQ(q.max(), 1000.0);
    // P^2 estimates on a uniform ramp stay close to the exact order
    // statistics.
    EXPECT_NEAR(q.p50(), 500.0, 25.0);
    EXPECT_NEAR(q.p95(), 950.0, 25.0);
    EXPECT_NEAR(q.p99(), 990.0, 25.0);
    q.reset();
    EXPECT_EQ(q.count(), 0u);
    EXPECT_DOUBLE_EQ(q.p50(), 0.0);
}

TEST(Quantile, ExactForFewSamplesAndGatedByStatsSwitch)
{
    Registry reg;
    Quantile &q = reg.quantile("t.quant.small");
    q.add(3.0);
    q.add(1.0);
    q.add(2.0);
    // Below five samples the sketch falls back to the exact
    // interpolated order statistic over {1, 2, 3}.
    EXPECT_DOUBLE_EQ(q.p50(), 2.0);
    EXPECT_NEAR(q.p99(), 2.98, 1e-12);

    setStatsEnabled(false);
    q.add(100.0);
    setStatsEnabled(true);
    EXPECT_EQ(q.count(), 3u);
}

TEST(Registry, GetOrCreateReturnsSameStat)
{
    Registry reg;
    Counter &a = reg.counter("t.same.counter");
    Counter &b = reg.counter("t.same.counter");
    EXPECT_EQ(&a, &b);
    a.inc();
    EXPECT_EQ(b.value(), 1u);

    Distribution &d1 = reg.distribution("t.same.dist", 0.0, 1.0, 4);
    Distribution &d2 = reg.distribution("t.same.dist", 0.0, 1.0, 4);
    EXPECT_EQ(&d1, &d2);
    EXPECT_EQ(reg.size(), 2u);
}

TEST(RegistryDeathTest, DuplicateNameDifferentKindPanics)
{
    Registry reg;
    reg.counter("t.dup.stat");
    EXPECT_DEATH(reg.gauge("t.dup.stat"), "t.dup.stat");
    EXPECT_DEATH(reg.distribution("t.dup.stat", 0.0, 1.0, 4),
                 "t.dup.stat");
    EXPECT_DEATH(reg.quantile("t.dup.stat"), "t.dup.stat");
    reg.quantile("t.dup.quant");
    EXPECT_DEATH(reg.counter("t.dup.quant"), "t.dup.quant");
}

TEST(RegistryDeathTest, DistributionShapeMismatchPanics)
{
    Registry reg;
    reg.distribution("t.dup.dist", 0.0, 1.0, 4);
    EXPECT_DEATH(reg.distribution("t.dup.dist", 0.0, 2.0, 4),
                 "t.dup.dist");
    EXPECT_DEATH(reg.distribution("t.dup.dist", 0.0, 1.0, 8),
                 "t.dup.dist");
}

TEST(Registry, ResetAllZeroesValuesKeepsRegistrations)
{
    Registry reg;
    reg.counter("t.reset.c").inc(5);
    reg.gauge("t.reset.g").set(3.0);
    reg.distribution("t.reset.d", 0.0, 1.0, 2).add(0.5);
    reg.resetAll();
    EXPECT_EQ(reg.size(), 3u);
    EXPECT_EQ(reg.counter("t.reset.c").value(), 0u);
    EXPECT_DOUBLE_EQ(reg.gauge("t.reset.g").value(), 0.0);
    EXPECT_EQ(reg.distribution("t.reset.d", 0.0, 1.0, 2).count(), 0u);
}

TEST(Registry, SnapshotTextContainsSortedNames)
{
    Registry reg;
    reg.counter("t.b").inc(2);
    reg.counter("t.a").inc(1);
    std::string text = reg.snapshotText();
    std::size_t pa = text.find("t.a");
    std::size_t pb = text.find("t.b");
    ASSERT_NE(pa, std::string::npos);
    ASSERT_NE(pb, std::string::npos);
    EXPECT_LT(pa, pb);
}

TEST(Registry, SnapshotJsonRoundTrips)
{
    Registry reg;
    reg.counter("t.json.counter").inc(7);
    reg.gauge("t.json.gauge").set(2.5);
    Distribution &d =
        reg.distribution("t.json.dist", 0.0, 4.0, 4);
    d.add(-1.0);
    d.add(1.5);
    d.add(9.0);

    JsonValue doc;
    std::string err;
    ASSERT_TRUE(parseJson(reg.snapshotJson(), &doc, &err)) << err;
    ASSERT_EQ(doc.kind(), JsonValue::Kind::OBJECT);
    EXPECT_EQ(doc.object().size(), 3u);

    const JsonValue *c = doc.find("t.json.counter");
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->find("kind")->str(), "counter");
    EXPECT_DOUBLE_EQ(c->find("value")->number(), 7.0);

    const JsonValue *g = doc.find("t.json.gauge");
    ASSERT_NE(g, nullptr);
    EXPECT_EQ(g->find("kind")->str(), "gauge");
    EXPECT_DOUBLE_EQ(g->find("value")->number(), 2.5);

    const JsonValue *jd = doc.find("t.json.dist");
    ASSERT_NE(jd, nullptr);
    EXPECT_EQ(jd->find("kind")->str(), "distribution");
    EXPECT_DOUBLE_EQ(jd->find("count")->number(), 3.0);
    EXPECT_DOUBLE_EQ(jd->find("underflow")->number(), 1.0);
    EXPECT_DOUBLE_EQ(jd->find("overflow")->number(), 1.0);
    EXPECT_DOUBLE_EQ(jd->find("min")->number(), -1.0);
    EXPECT_DOUBLE_EQ(jd->find("max")->number(), 9.0);
    ASSERT_EQ(jd->find("bins")->array().size(), 4u);
    EXPECT_DOUBLE_EQ(jd->find("bins")->array()[1].number(), 1.0);
}

TEST(Registry, SnapshotJsonQuantileShape)
{
    Registry reg;
    Quantile &q = reg.quantile("t.json.quant");
    for (int i = 1; i <= 4; ++i)
        q.add((double)i);

    JsonValue doc;
    std::string err;
    ASSERT_TRUE(parseJson(reg.snapshotJson(), &doc, &err)) << err;
    const JsonValue *jq = doc.find("t.json.quant");
    ASSERT_NE(jq, nullptr);
    EXPECT_EQ(jq->find("kind")->str(), "quantile");
    EXPECT_DOUBLE_EQ(jq->find("count")->number(), 4.0);
    EXPECT_DOUBLE_EQ(jq->find("mean")->number(), 2.5);
    EXPECT_DOUBLE_EQ(jq->find("min")->number(), 1.0);
    EXPECT_DOUBLE_EQ(jq->find("max")->number(), 4.0);
    ASSERT_NE(jq->find("p50"), nullptr);
    ASSERT_NE(jq->find("p95"), nullptr);
    ASSERT_NE(jq->find("p99"), nullptr);
}

TEST(Registry, StatsDisabledDropsUpdates)
{
    Registry reg;
    Counter &c = reg.counter("t.gated.counter");
    Gauge &g = reg.gauge("t.gated.gauge");
    setStatsEnabled(false);
    c.inc(5);
    g.set(1.0);
    setStatsEnabled(true);
    EXPECT_EQ(c.value(), 0u);
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
    c.inc();
    EXPECT_EQ(c.value(), 1u);
}

TEST(Registry, GlobalHasInstrumentationNames)
{
    // The process-wide registry picks up names as instrumented code
    // runs; pulling one here must agree with the instrumentation site.
    Counter &c =
        Registry::global().counter("common.pool.tasks_run");
    (void)c;
    EXPECT_GE(Registry::global().size(), 1u);
}

TEST(Json, NumberFormattingRoundTrips)
{
    double vals[] = {0.0, 1.0, -1.5, 1.0 / 3.0, 1e-300, 1e300};
    for (double v : vals) {
        JsonValue parsed;
        ASSERT_TRUE(parseJson(jsonNumber(v), &parsed));
        EXPECT_EQ(parsed.number(), v) << jsonNumber(v);
    }
    // JSON has no inf/nan tokens: NaN (no value) maps to null, and
    // the directional infinities survive as the strings "inf"/"-inf"
    // rather than collapsing into a finite 1e308-style literal.
    EXPECT_EQ(jsonNumber(std::nan("")), "null");
    EXPECT_EQ(jsonNumber(INFINITY), "\"inf\"");
    EXPECT_EQ(jsonNumber(-INFINITY), "\"-inf\"");
    JsonValue parsed;
    ASSERT_TRUE(parseJson(jsonNumber(std::nan("")), &parsed));
    EXPECT_EQ(parsed.kind(), JsonValue::Kind::NUL);
    ASSERT_TRUE(parseJson(jsonNumber(INFINITY), &parsed));
    EXPECT_EQ(parsed.str(), "inf");
    ASSERT_TRUE(parseJson(jsonNumber(-INFINITY), &parsed));
    EXPECT_EQ(parsed.str(), "-inf");
}

TEST(Json, EscapeControlAndQuotes)
{
    std::string escaped = jsonEscape("a\"b\\c\n\t\x01");
    JsonValue parsed;
    ASSERT_TRUE(parseJson("\"" + escaped + "\"", &parsed));
    EXPECT_EQ(parsed.str(), "a\"b\\c\n\t\x01");
}

TEST(Json, ParserRejectsGarbage)
{
    JsonValue v;
    std::string err;
    EXPECT_FALSE(parseJson("{\"a\":}", &v, &err));
    EXPECT_FALSE(parseJson("[1,]", &v, &err));
    EXPECT_FALSE(parseJson("{\"a\":1} trailing", &v, &err));
    EXPECT_FALSE(parseJson("", &v, &err));
}

} // namespace
} // namespace dsv3::obs
