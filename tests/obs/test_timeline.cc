/**
 * @file
 * Tests for the sim-time Timeline: event emission and Chrome JSON
 * shape, metadata ordering, the event cap + dropped counter,
 * seed-deterministic sampling, and byte-determinism of the export.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>

#include "obs/json.hh"
#include "obs/registry.hh"
#include "obs/timeline.hh"

namespace dsv3::obs {
namespace {

/** A small mixed-phase emission sequence on two tracks. */
void
emitSample(Timeline &tl)
{
    tl.setProcessName(1, "fleet");
    tl.setThreadName(1, 0, "engine 0");
    tl.duration(1, 0, "decode.step", 0.5, 0.75, "\"batch\":8");
    tl.asyncBegin(1, 0, "prefill", "prefill", 42, 0.1);
    tl.asyncEnd(1, 0, "prefill", "prefill", 42, 0.4);
    tl.instant(1, 0, "preempt", 0.6);
    tl.counter(1, "resident", 0.5, 8.0);
    tl.flowStart(1, 0, "kv.handoff", 7, 0.4);
    tl.flowFinish(1, 0, "kv.handoff", 7, 0.45);
}

TEST(Timeline, ChromeJsonShapeAndMetadataFirst)
{
    Timeline tl;
    emitSample(tl);
    EXPECT_EQ(tl.eventCount(), 7u);

    JsonValue doc;
    std::string err;
    ASSERT_TRUE(parseJson(tl.chromeJson(), &doc, &err)) << err;
    const JsonValue *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    // 7 emitted events + 2 metadata records.
    ASSERT_EQ(events->array().size(), 9u);

    // Metadata ("M") events lead so viewers name tracks up front.
    EXPECT_EQ(events->array()[0].find("ph")->str(), "M");
    EXPECT_EQ(events->array()[1].find("ph")->str(), "M");

    std::set<std::string> phases;
    for (const JsonValue &e : events->array()) {
        phases.insert(e.find("ph")->str());
        ASSERT_NE(e.find("pid"), nullptr);
    }
    for (const char *ph : {"M", "X", "b", "e", "i", "C", "s", "f"})
        EXPECT_TRUE(phases.count(ph)) << ph;

    // Sim seconds export as microseconds: the 0.5s..0.75s slice.
    for (const JsonValue &e : events->array()) {
        if (e.find("ph")->str() != "X")
            continue;
        EXPECT_DOUBLE_EQ(e.find("ts")->number(), 0.5e6);
        EXPECT_DOUBLE_EQ(e.find("dur")->number(), 0.25e6);
        EXPECT_DOUBLE_EQ(e.find("args")->find("batch")->number(), 8.0);
    }
}

TEST(Timeline, ExportIsByteDeterministic)
{
    Timeline a;
    Timeline b;
    emitSample(a);
    emitSample(b);
    EXPECT_EQ(a.chromeJson(), b.chromeJson());
}

TEST(Timeline, CapDropsAndCounts)
{
    std::uint64_t before =
        Registry::global().counter("obs.timeline.dropped").value();
    Timeline::Config cfg;
    cfg.maxEvents = 3;
    Timeline tl(cfg);
    for (int i = 0; i < 10; ++i)
        tl.instant(1, 0, "tick", (double)i);
    EXPECT_EQ(tl.eventCount(), 3u);
    EXPECT_EQ(tl.droppedCount(), 7u);
    EXPECT_EQ(Registry::global().counter("obs.timeline.dropped").value(),
              before + 7u);

    // Track names are metadata, not subject to the event cap.
    tl.setProcessName(1, "fleet");
    JsonValue doc;
    ASSERT_TRUE(parseJson(tl.chromeJson(), &doc));
    EXPECT_EQ(doc.find("traceEvents")->array().size(), 4u);
}

TEST(Timeline, ClearKeepsConfigDropsEvents)
{
    Timeline::Config cfg;
    cfg.maxEvents = 5;
    Timeline tl(cfg);
    tl.setProcessName(1, "p");
    tl.instant(1, 0, "a", 0.0);
    tl.clear();
    EXPECT_EQ(tl.eventCount(), 0u);
    EXPECT_EQ(tl.droppedCount(), 0u);
    EXPECT_EQ(tl.config().maxEvents, 5u);
    JsonValue doc;
    ASSERT_TRUE(parseJson(tl.chromeJson(), &doc));
    EXPECT_EQ(doc.find("traceEvents")->array().size(), 0u);
}

TEST(Timeline, SamplingIsSeedDeterministicOneInN)
{
    Timeline::Config cfg;
    cfg.sampleEvery = 4;
    cfg.sampleSeed = 123;
    Timeline a(cfg);
    Timeline b(cfg);

    std::size_t kept = 0;
    for (std::uint64_t id = 0; id < 1000; ++id) {
        EXPECT_EQ(a.sampled(id), b.sampled(id)) << id;
        if (a.sampled(id))
            ++kept;
    }
    // Hash-based 1-in-4: roughly a quarter survive.
    EXPECT_GT(kept, 150u);
    EXPECT_LT(kept, 400u);

    // A different seed keeps a different subset.
    cfg.sampleSeed = 999;
    Timeline c(cfg);
    bool differs = false;
    for (std::uint64_t id = 0; id < 1000 && !differs; ++id)
        differs = a.sampled(id) != c.sampled(id);
    EXPECT_TRUE(differs);

    // sampleEvery <= 1 keeps everything.
    Timeline all;
    for (std::uint64_t id = 0; id < 64; ++id)
        EXPECT_TRUE(all.sampled(id));
}

TEST(Timeline, ConfigFromEnvAppliesOverrides)
{
    ::setenv("DSV3_TIMELINE_SAMPLE", "8", 1);
    ::setenv("DSV3_TIMELINE_MAX_EVENTS", "777", 1);
    Timeline::Config cfg = Timeline::configFromEnv();
    ::unsetenv("DSV3_TIMELINE_SAMPLE");
    ::unsetenv("DSV3_TIMELINE_MAX_EVENTS");
    EXPECT_EQ(cfg.sampleEvery, 8u);
    EXPECT_EQ(cfg.maxEvents, 777u);

    Timeline::Config defaults = Timeline::configFromEnv();
    EXPECT_EQ(defaults.sampleEvery, 1u);
    EXPECT_EQ(defaults.maxEvents, (std::size_t)1u << 20);
}

} // namespace
} // namespace dsv3::obs
