/**
 * @file
 * Tests for the flight recorder: ring overwrite semantics, the
 * timeseries JSON export, and counter replay into a Timeline.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/flight_recorder.hh"
#include "obs/json.hh"
#include "obs/timeline.hh"

namespace dsv3::obs {
namespace {

TEST(FlightRecorder, RecordsUpToCapacity)
{
    FlightRecorder rec(8);
    EXPECT_TRUE(rec.empty());
    for (int i = 0; i < 5; ++i)
        rec.record("a", (double)i, (double)(i * 10));
    EXPECT_FALSE(rec.empty());
    EXPECT_EQ(rec.overwrittenCount(), 0u);

    std::vector<FlightRecorder::Sample> s = rec.samples("a");
    ASSERT_EQ(s.size(), 5u);
    for (int i = 0; i < 5; ++i) {
        EXPECT_DOUBLE_EQ(s[i].t, (double)i);
        EXPECT_DOUBLE_EQ(s[i].v, (double)(i * 10));
    }
    EXPECT_TRUE(rec.samples("missing").empty());
}

TEST(FlightRecorder, OverwritesOldestWhenFull)
{
    FlightRecorder rec(4);
    for (int i = 0; i < 10; ++i)
        rec.record("a", (double)i, (double)i);
    EXPECT_EQ(rec.overwrittenCount(), 6u);

    // The tail of the flight survives, in chronological order.
    std::vector<FlightRecorder::Sample> s = rec.samples("a");
    ASSERT_EQ(s.size(), 4u);
    for (int i = 0; i < 4; ++i)
        EXPECT_DOUBLE_EQ(s[i].t, (double)(6 + i));
}

TEST(FlightRecorder, ChannelsSortedAndIndependent)
{
    FlightRecorder rec(2);
    rec.record("z.late", 0.0, 1.0);
    rec.record("a.early", 0.0, 2.0);
    rec.record("m.mid", 0.0, 3.0);
    std::vector<std::string> names = rec.channels();
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "a.early");
    EXPECT_EQ(names[1], "m.mid");
    EXPECT_EQ(names[2], "z.late");

    // Filling one channel's ring leaves the others untouched.
    rec.record("z.late", 1.0, 1.0);
    rec.record("z.late", 2.0, 1.0);
    EXPECT_EQ(rec.samples("a.early").size(), 1u);
    EXPECT_EQ(rec.samples("z.late").size(), 2u);

    rec.clear();
    EXPECT_TRUE(rec.empty());
    EXPECT_EQ(rec.overwrittenCount(), 0u);
}

TEST(FlightRecorder, TimeseriesJsonRoundTrips)
{
    FlightRecorder rec(4);
    rec.record("resident", 0.5, 8.0);
    rec.record("resident", 1.0, 16.0);
    rec.record("queue", 0.5, 3.0);

    JsonValue doc;
    std::string err;
    ASSERT_TRUE(parseJson(rec.timeseriesJson(), &doc, &err)) << err;
    const JsonValue *resident = doc.find("resident");
    ASSERT_NE(resident, nullptr);
    ASSERT_EQ(resident->find("t")->array().size(), 2u);
    EXPECT_DOUBLE_EQ(resident->find("t")->array()[1].number(), 1.0);
    EXPECT_DOUBLE_EQ(resident->find("v")->array()[1].number(), 16.0);
    const JsonValue *queue = doc.find("queue");
    ASSERT_NE(queue, nullptr);
    EXPECT_DOUBLE_EQ(queue->find("v")->array()[0].number(), 3.0);
}

TEST(FlightRecorder, ExportCountersReplaysIntoTimeline)
{
    FlightRecorder rec(4);
    rec.record("resident", 0.5, 8.0);
    rec.record("resident", 1.0, 16.0);
    rec.record("queue", 0.25, 3.0);

    Timeline tl;
    rec.exportCounters(tl, 3);
    EXPECT_EQ(tl.eventCount(), 3u);

    JsonValue doc;
    ASSERT_TRUE(parseJson(tl.chromeJson(), &doc));
    const auto &events = doc.find("traceEvents")->array();
    ASSERT_EQ(events.size(), 3u);
    for (const JsonValue &e : events) {
        EXPECT_EQ(e.find("ph")->str(), "C");
        EXPECT_DOUBLE_EQ(e.find("pid")->number(), 3.0);
    }
    // Channels replay in sorted order, samples chronologically.
    EXPECT_EQ(events[0].find("name")->str(), "queue");
    EXPECT_EQ(events[1].find("name")->str(), "resident");
    EXPECT_DOUBLE_EQ(events[1].find("ts")->number(), 0.5e6);
    EXPECT_DOUBLE_EQ(
        events[2].find("args")->find("value")->number(), 16.0);
}

} // namespace
} // namespace dsv3::obs
