/**
 * @file
 * Tests for the event-driven serving-fleet simulator: traffic-trace
 * determinism, KV-pager budget invariants, closed-loop convergence to
 * the analytic epSpeedLimit/mtpAnalytic models, preemption under KV
 * pressure, and byte-identical results across thread widths.
 */

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "common/sweep.hh"
#include "common/thread_pool.hh"
#include "ep/speed_limit.hh"
#include "inference/mtp.hh"
#include "inference/serving/kv_pager.hh"
#include "inference/serving/simulator.hh"
#include "inference/serving/traffic.hh"
#include "model/config.hh"
#include "model/kv_cache.hh"
#include "obs/flight_recorder.hh"
#include "obs/timeline.hh"

namespace dsv3::inference::serving {
namespace {

// Traffic ---------------------------------------------------------------

TEST(ServingTraffic, SameSeedSameTrace)
{
    TrafficConfig cfg;
    cfg.requests = 500;
    Rng a(7), b(7), c(8);
    auto ta = generateTrace(cfg, a);
    auto tb = generateTrace(cfg, b);
    auto tc = generateTrace(cfg, c);
    ASSERT_EQ(ta.size(), tb.size());
    bool differs = false;
    for (std::size_t i = 0; i < ta.size(); ++i) {
        EXPECT_DOUBLE_EQ(ta[i].arrivalSeconds, tb[i].arrivalSeconds);
        EXPECT_EQ(ta[i].promptTokens, tb[i].promptTokens);
        EXPECT_EQ(ta[i].genTokens, tb[i].genTokens);
        differs |= ta[i].arrivalSeconds != tc[i].arrivalSeconds;
    }
    EXPECT_TRUE(differs) << "different seeds gave identical traces";
}

TEST(ServingTraffic, ArrivalsNondecreasingAllProcesses)
{
    for (ArrivalProcess p :
         {ArrivalProcess::POISSON, ArrivalProcess::DIURNAL,
          ArrivalProcess::BURSTY}) {
        TrafficConfig cfg;
        cfg.process = p;
        cfg.requests = 2000;
        Rng rng(11);
        auto trace = generateTrace(cfg, rng);
        for (std::size_t i = 1; i < trace.size(); ++i)
            ASSERT_GE(trace[i].arrivalSeconds,
                      trace[i - 1].arrivalSeconds)
                << arrivalProcessName(p) << " at " << i;
        for (const Request &r : trace) {
            ASSERT_GE(r.promptTokens, cfg.promptTokensMin);
            ASSERT_LE(r.promptTokens, cfg.promptTokensMax);
            ASSERT_GE(r.genTokens, cfg.genTokensMin);
            ASSERT_LE(r.genTokens, cfg.genTokensMax);
        }
    }
}

TEST(ServingTraffic, OpenLoopMeanRateApproximatelyConfigured)
{
    for (ArrivalProcess p :
         {ArrivalProcess::POISSON, ArrivalProcess::BURSTY}) {
        TrafficConfig cfg;
        cfg.process = p;
        cfg.requests = 20000;
        cfg.requestsPerSecond = 10.0;
        Rng rng(3);
        auto trace = generateTrace(cfg, rng);
        double span = trace.back().arrivalSeconds;
        double rate = (double)trace.size() / span;
        EXPECT_NEAR(rate, cfg.requestsPerSecond,
                    0.15 * cfg.requestsPerSecond)
            << arrivalProcessName(p);
    }
}

TEST(ServingTraffic, BurstyHasHigherInterarrivalVariance)
{
    auto interarrival_cv2 = [](ArrivalProcess p) {
        TrafficConfig cfg;
        cfg.process = p;
        cfg.requests = 20000;
        Rng rng(5);
        auto trace = generateTrace(cfg, rng);
        double mean = 0.0, m2 = 0.0;
        std::vector<double> gaps;
        for (std::size_t i = 1; i < trace.size(); ++i)
            gaps.push_back(trace[i].arrivalSeconds -
                           trace[i - 1].arrivalSeconds);
        for (double g : gaps)
            mean += g;
        mean /= (double)gaps.size();
        for (double g : gaps)
            m2 += (g - mean) * (g - mean);
        m2 /= (double)gaps.size();
        return m2 / (mean * mean);
    };
    // Poisson interarrivals have CV^2 == 1; the on/off modulated
    // process is overdispersed.
    EXPECT_NEAR(interarrival_cv2(ArrivalProcess::POISSON), 1.0, 0.15);
    EXPECT_GT(interarrival_cv2(ArrivalProcess::BURSTY), 1.5);
}

TEST(ServingTraffic, ClosedLoopSentinels)
{
    TrafficConfig cfg;
    cfg.process = ArrivalProcess::CLOSED_LOOP;
    cfg.requests = 100;
    cfg.closedLoopConcurrency = 16;
    Rng rng(9);
    auto trace = generateTrace(cfg, rng);
    for (std::size_t i = 0; i < trace.size(); ++i) {
        if (i < cfg.closedLoopConcurrency)
            EXPECT_DOUBLE_EQ(trace[i].arrivalSeconds, 0.0);
        else
            EXPECT_TRUE(std::isinf(trace[i].arrivalSeconds));
    }
}

// KV pager --------------------------------------------------------------

TEST(ServingKvPager, BlockArithmetic)
{
    KvPagerConfig cfg;
    cfg.budgetBytes = 1e6;
    cfg.bytesPerToken = 100.0;
    cfg.blockTokens = 16;
    KvPager pager(cfg);
    EXPECT_EQ(pager.blocksFor(1), 1u);
    EXPECT_EQ(pager.blocksFor(16), 1u);
    EXPECT_EQ(pager.blocksFor(17), 2u);
    // 1600 bytes per block -> 625 blocks in 1e6 bytes.
    EXPECT_EQ(pager.totalBlocks(), 625u);
    EXPECT_LE((double)pager.totalBlocks() * pager.blockBytes(),
              cfg.budgetBytes);
}

TEST(ServingKvPager, BudgetNeverExceededUnderRandomOps)
{
    // The budget is derived through maxContextTokens(): the pager must
    // respect the same byte model the analytic calculators use.
    model::ModelConfig cfg = model::deepSeekV3();
    const double budget = 16.0 * 1024 * 1024 * 1024; // 16 GiB of KV
    const std::size_t max_ctx = model::maxContextTokens(cfg, budget);
    ASSERT_GT(max_ctx, 0u);

    KvPagerConfig pc;
    pc.budgetBytes = budget;
    pc.bytesPerToken = model::kvCacheBytesPerToken(cfg);
    pc.blockTokens = 64;
    KvPager pager(pc);

    Rng rng(17);
    std::vector<std::size_t> live;
    std::vector<std::size_t> tokens(4096, 0);
    std::size_t next_id = 0;
    for (int op = 0; op < 20000; ++op) {
        ASSERT_LE(pager.usedBytes(), budget);
        ASSERT_LE(pager.usedBlocks(), pager.totalBlocks());
        ASSERT_LE(pager.highWaterBlocks(), pager.totalBlocks());
        const double roll = rng.nextDouble();
        if (roll < 0.4 || live.empty()) {
            std::size_t id = next_id++;
            std::size_t toks =
                64 + (std::size_t)rng.nextBounded(8192);
            if (id < tokens.size() &&
                pager.tryAllocate(id, toks)) {
                tokens[id] = toks;
                live.push_back(id);
            }
        } else if (roll < 0.8) {
            std::size_t pick =
                (std::size_t)rng.nextBounded(live.size());
            std::size_t id = live[pick];
            tokens[id] += 1 + (std::size_t)rng.nextBounded(256);
            if (!pager.tryGrow(id, tokens[id])) {
                pager.release(id);
                live.erase(live.begin() + (std::ptrdiff_t)pick);
            }
        } else {
            std::size_t pick =
                (std::size_t)rng.nextBounded(live.size());
            pager.release(live[pick]);
            live.erase(live.begin() + (std::ptrdiff_t)pick);
        }
    }
    EXPECT_GT(pager.highWaterBlocks(), 0u);
}

TEST(ServingKvPager, UnlimitedWhenNoBudget)
{
    KvPagerConfig cfg;
    KvPager pager(cfg);
    EXPECT_TRUE(pager.unlimited());
    EXPECT_TRUE(pager.tryAllocate(1, 1u << 30));
    EXPECT_TRUE(pager.fitsEver(1u << 30));
}

// Closed-loop convergence ----------------------------------------------

/**
 * Comm-bound fleet: memory/compute rooflines vanish so every step is
 * the Sec 2.3.2 all-to-all floor. Closed loop at 2x batchPerDevice
 * (two micro-batches of 32) must reproduce epSpeedLimit() exactly.
 */
ServingFleetConfig
commBoundFleet()
{
    ServingFleetConfig fleet;
    fleet.modelConfig = model::deepSeekV3();
    fleet.memBytesPerSec = 1e30;
    fleet.computeFlopsPerSec = 0.0;
    fleet.schedule = Schedule::DUAL_MICROBATCH;
    fleet.deployment = Deployment::DISAGGREGATED;
    fleet.maxBatchPerEngine = 64;
    fleet.prefillServers = 64;
    fleet.prefillTokensPerSecPerServer = 1e9;
    fleet.kvHandoffSeconds = 0.0;
    return fleet;
}

TrafficConfig
closedLoopTraffic(std::size_t requests, std::size_t gen)
{
    TrafficConfig traffic;
    traffic.process = ArrivalProcess::CLOSED_LOOP;
    traffic.requests = requests;
    traffic.closedLoopConcurrency = 64;
    traffic.promptTokensMin = traffic.promptTokensMax = 128;
    traffic.genTokensMin = traffic.genTokensMax = gen;
    return traffic;
}

TEST(ServingSim, DecodeStepMatchesSpeedLimitCommBound)
{
    ServingFleetConfig fleet = commBoundFleet();
    ep::SpeedLimit analytic = ep::epSpeedLimit(fleet.comm);
    // Batch 64 = two micro-batches of comm.batchPerDevice (32).
    double step = decodeStepSeconds(fleet, 64, 4096.0);
    EXPECT_NEAR(step, analytic.tpotSeconds,
                1e-9 * analytic.tpotSeconds);
}

TEST(ServingSim, ClosedLoopTpotReproducesSpeedLimit)
{
    ServingFleetConfig fleet = commBoundFleet();
    ServingMetrics m =
        simulateServing(fleet, closedLoopTraffic(128, 128), 42);
    EXPECT_EQ(m.requestsCompleted, 128u);
    ep::SpeedLimit analytic = ep::epSpeedLimit(fleet.comm);
    EXPECT_NEAR(m.tpot.p50, analytic.tpotSeconds,
                0.01 * analytic.tpotSeconds);
    EXPECT_NEAR(m.tpot.mean, analytic.tpotSeconds,
                0.01 * analytic.tpotSeconds);
}

TEST(ServingSim, ClosedLoopMtpReproducesAnalyticSpeedup)
{
    ServingFleetConfig fleet = commBoundFleet();
    TrafficConfig traffic = closedLoopTraffic(256, 256);

    ServingMetrics plain = simulateServing(fleet, traffic, 42);
    fleet.mtpEnabled = true;
    fleet.mtp.acceptanceRate = 0.85;
    ServingMetrics mtp = simulateServing(fleet, traffic, 42);

    double measured =
        mtp.tokensPerSecond / plain.tokensPerSecond;
    double analytic = mtpAnalytic(fleet.mtp).speedup;
    EXPECT_NEAR(measured, analytic, 0.01 * analytic);
}

TEST(ServingSim, OverlapWinsWhenCommSignificant)
{
    // When the all-to-all floor dominates, dual micro-batching hides
    // compute under comm and the sequential schedule pays both.
    ServingFleetConfig fleet = commBoundFleet();
    fleet.memBytesPerSec = 1e14; // compute visible but below comm
    TrafficConfig traffic = closedLoopTraffic(64, 64);
    ServingMetrics dual = simulateServing(fleet, traffic, 1);
    fleet.schedule = Schedule::SEQUENTIAL;
    ServingMetrics seq = simulateServing(fleet, traffic, 1);
    EXPECT_GT(seq.tpot.p50, dual.tpot.p50);
}

TEST(ServingSim, OverlapLosesWhenMemoryBound)
{
    // With negligible comm the split de-amortizes MoE weights: each
    // half-batch streams ~64% of the expert pool where the full batch
    // streams ~87% once, so sequential is the right schedule.
    ServingFleetConfig fleet = commBoundFleet();
    fleet.memBytesPerSec = 3.35e12;
    fleet.comm.bandwidthBytesPerSec = 1e15; // comm ~ free
    TrafficConfig traffic = closedLoopTraffic(64, 64);
    ServingMetrics dual = simulateServing(fleet, traffic, 1);
    fleet.schedule = Schedule::SEQUENTIAL;
    ServingMetrics seq = simulateServing(fleet, traffic, 1);
    EXPECT_LT(seq.tpot.p50, dual.tpot.p50);
}

// KV pressure -----------------------------------------------------------

TEST(ServingSim, PreemptsUnderKvPressureAndStaysInBudget)
{
    ServingFleetConfig fleet = commBoundFleet();
    fleet.prefillTokensPerSecPerServer = 1e6;
    // Budget fits ~6 full sequences of 128+256 tokens; run 16
    // concurrent so growth collides.
    const double per_tok =
        model::kvCacheBytesPerToken(fleet.modelConfig);
    fleet.kvBudgetBytesPerEngine = per_tok * 6.0 * 384.0;
    fleet.kvBlockTokens = 32;
    fleet.maxBatchPerEngine = 16;

    TrafficConfig traffic = closedLoopTraffic(64, 256);
    traffic.closedLoopConcurrency = 16;
    traffic.promptTokensMin = traffic.promptTokensMax = 128;

    ServingMetrics m = simulateServing(fleet, traffic, 7);
    EXPECT_EQ(m.requestsCompleted + m.requestsRejected, 64u);
    EXPECT_EQ(m.requestsRejected, 0u);
    EXPECT_GT(m.preemptions, 0u);
    EXPECT_GT(m.kvTotalBlocks, 0u);
    EXPECT_LE(m.kvHighWaterBlocks, m.kvTotalBlocks);
}

TEST(ServingSim, RejectsSequencesThatCanNeverFit)
{
    ServingFleetConfig fleet = commBoundFleet();
    fleet.prefillTokensPerSecPerServer = 1e6;
    const double per_tok =
        model::kvCacheBytesPerToken(fleet.modelConfig);
    fleet.kvBudgetBytesPerEngine = per_tok * 256.0; // tiny
    TrafficConfig traffic = closedLoopTraffic(8, 512);
    traffic.closedLoopConcurrency = 4;
    traffic.promptTokensMin = traffic.promptTokensMax = 4096;
    ServingMetrics m = simulateServing(fleet, traffic, 3);
    EXPECT_EQ(m.requestsRejected, 8u);
    EXPECT_EQ(m.requestsCompleted, 0u);
}

// Deployment comparison -------------------------------------------------

TEST(ServingSim, ColocationInflatesTpotVsDisaggregation)
{
    ServingFleetConfig fleet = commBoundFleet();
    fleet.prefillServers = 1;
    fleet.prefillTokensPerSecPerServer = 12000.0;
    fleet.kvHandoffSeconds = 0.05;
    TrafficConfig traffic;
    traffic.process = ArrivalProcess::POISSON;
    traffic.requests = 200;
    traffic.requestsPerSecond = 2.0;
    traffic.promptTokensMin = 2048;
    traffic.promptTokensMax = 8192;
    traffic.genTokensMin = traffic.genTokensMax = 128;

    ServingMetrics disagg = simulateServing(fleet, traffic, 5);
    fleet.deployment = Deployment::COLOCATED;
    ServingMetrics coloc = simulateServing(fleet, traffic, 5);

    EXPECT_EQ(disagg.requestsCompleted, 200u);
    EXPECT_EQ(coloc.requestsCompleted, 200u);
    // Interleaved prefill chunks stretch decode steps (Sec 2.3.1).
    EXPECT_GT(coloc.tpot.p50, disagg.tpot.p50);
    // The handoff delay is the disaggregation tax on TTFT when the
    // prefill pool itself is not the bottleneck.
    EXPECT_GT(disagg.ttft.mean, 0.0);
}

// Determinism -----------------------------------------------------------

std::vector<double>
metricsFingerprint(const ServingMetrics &m)
{
    return {(double)m.requestsCompleted, (double)m.requestsRejected,
            (double)m.decodeSteps, (double)m.decodeTokens,
            (double)m.preemptions, m.simSeconds, m.ttft.mean,
            m.ttft.p50, m.ttft.p95, m.ttft.p99, m.tpot.mean,
            m.tpot.p50, m.tpot.p95, m.tpot.p99, m.goodput.p50,
            m.tokensPerSecond, m.sloGoodputTokensPerSecond,
            (double)m.kvHighWaterBlocks};
}

TEST(ServingSim, ByteIdenticalAcrossThreadWidthsAndReruns)
{
    const ArrivalProcess procs[] = {ArrivalProcess::POISSON,
                                    ArrivalProcess::DIURNAL,
                                    ArrivalProcess::BURSTY};
    const Deployment deps[] = {Deployment::DISAGGREGATED,
                               Deployment::COLOCATED};

    auto run_grid = [&]() {
        std::vector<std::vector<double>> out(6);
        runSweepGrid(3, 2, [&](const SweepPoint &p) {
            ServingFleetConfig fleet = commBoundFleet();
            fleet.deployment = deps[p.col];
            fleet.prefillServers = 2;
            fleet.prefillTokensPerSecPerServer = 24000.0;
            TrafficConfig traffic;
            traffic.process = procs[p.row];
            traffic.requests = 300;
            traffic.requestsPerSecond = 4.0;
            traffic.genTokensMin = 64;
            traffic.genTokensMax = 256;
            ServingMetrics m = simulateServing(
                fleet, traffic, 1000 + p.index);
            out[p.index] = metricsFingerprint(m);
        });
        return out;
    };

    setParallelForWidth(1);
    auto w1 = run_grid();
    setParallelForWidth(2);
    auto w2 = run_grid();
    setParallelForWidth(0);
    auto whw = run_grid();
    auto whw2 = run_grid();
    setParallelForWidth(0);

    for (std::size_t i = 0; i < w1.size(); ++i) {
        ASSERT_EQ(w1[i].size(), w2[i].size());
        for (std::size_t j = 0; j < w1[i].size(); ++j) {
            // Bitwise equality, not approximate.
            EXPECT_EQ(std::memcmp(&w1[i][j], &w2[i][j],
                                  sizeof(double)), 0)
                << "cell " << i << " field " << j;
            EXPECT_EQ(std::memcmp(&w1[i][j], &whw[i][j],
                                  sizeof(double)), 0);
            EXPECT_EQ(std::memcmp(&whw[i][j], &whw2[i][j],
                                  sizeof(double)), 0);
        }
    }
}

TEST(ServingSim, DifferentSeedsDifferentOpenLoopMetrics)
{
    ServingFleetConfig fleet = commBoundFleet();
    fleet.prefillServers = 2;
    fleet.prefillTokensPerSecPerServer = 24000.0;
    TrafficConfig traffic;
    traffic.process = ArrivalProcess::POISSON;
    traffic.requests = 200;
    ServingMetrics a = simulateServing(fleet, traffic, 1);
    ServingMetrics b = simulateServing(fleet, traffic, 2);
    EXPECT_NE(a.simSeconds, b.simSeconds);
}

// Time-in-state attribution ---------------------------------------------

/** Realistic contended open-loop scenario exercising every state. */
ServingFleetConfig
contendedFleet()
{
    ServingFleetConfig fleet = commBoundFleet();
    fleet.memBytesPerSec = 3.35e12;
    fleet.prefillServers = 2;
    fleet.prefillTokensPerSecPerServer = 24000.0;
    fleet.kvHandoffSeconds = 0.05;
    const double per_tok =
        model::kvCacheBytesPerToken(fleet.modelConfig);
    fleet.kvBudgetBytesPerEngine = per_tok * 12.0 * 384.0;
    fleet.kvBlockTokens = 32;
    fleet.maxBatchPerEngine = 24;
    return fleet;
}

TrafficConfig
contendedTraffic()
{
    TrafficConfig traffic;
    traffic.process = ArrivalProcess::POISSON;
    traffic.requests = 200;
    traffic.requestsPerSecond = 6.0;
    traffic.genTokensMin = 64;
    traffic.genTokensMax = 256;
    return traffic;
}

TEST(ServingAttribution, StateTimesSumToTotalLatency)
{
    for (Deployment dep :
         {Deployment::DISAGGREGATED, Deployment::COLOCATED}) {
        ServingFleetConfig fleet = contendedFleet();
        fleet.deployment = dep;
        ServingMetrics m =
            simulateServing(fleet, contendedTraffic(), 21);
        ASSERT_GT(m.requestsCompleted, 0u);
        ASSERT_GT(m.preemptions, 0u)
            << "scenario must exercise the STALLED state";

        double sum = 0.0;
        for (std::size_t s = 0; s < kNumRequestStates; ++s)
            sum += m.stateSeconds[s];
        EXPECT_GT(m.totalLatencySeconds, 0.0);
        EXPECT_NEAR(sum, m.totalLatencySeconds,
                    1e-9 * m.totalLatencySeconds)
            << deploymentName(dep);

        // Every per-state digest covers every completed request, and
        // its exact moments are consistent with the summed total.
        for (std::size_t s = 0; s < kNumRequestStates; ++s) {
            const PercentileSummary &d = m.statePerRequest[s];
            EXPECT_EQ(d.count, m.requestsCompleted)
                << requestStateName((RequestState)s);
            EXPECT_NEAR(d.mean * (double)d.count, m.stateSeconds[s],
                        1e-6 * std::max(1.0, m.stateSeconds[s]));
            EXPECT_LE(d.p50, d.max * (1.0 + 1e-12));
        }
    }
}

TEST(ServingAttribution, BottleneckVerdictTracksRegime)
{
    // Comm-bound: all-to-all floor is the only per-step cost.
    ServingFleetConfig comm = commBoundFleet();
    ServingMetrics m_comm =
        simulateServing(comm, closedLoopTraffic(64, 128), 11);
    EXPECT_EQ(m_comm.bottleneck, Bottleneck::COMM)
        << bottleneckName(m_comm.bottleneck);

    // Memory-bound sequential decode with free comm: compute-bound.
    ServingFleetConfig cpu = commBoundFleet();
    cpu.memBytesPerSec = 3.35e12;
    cpu.comm.bandwidthBytesPerSec = 1e18;
    cpu.schedule = Schedule::SEQUENTIAL;
    ServingMetrics m_cpu =
        simulateServing(cpu, closedLoopTraffic(64, 128), 11);
    EXPECT_EQ(m_cpu.bottleneck, Bottleneck::COMPUTE)
        << bottleneckName(m_cpu.bottleneck);

    // A starved prefill pool piles requests into the queue.
    ServingFleetConfig queued = commBoundFleet();
    queued.prefillServers = 1;
    queued.prefillTokensPerSecPerServer = 2000.0;
    TrafficConfig heavy = contendedTraffic();
    heavy.promptTokensMin = 2048;
    heavy.promptTokensMax = 8192;
    ServingMetrics m_q = simulateServing(queued, heavy, 11);
    EXPECT_EQ(m_q.bottleneck, Bottleneck::QUEUE)
        << bottleneckName(m_q.bottleneck);
}

TEST(ServingAttribution, DecodeStepBreakdownIsExact)
{
    ServingFleetConfig fleets[] = {commBoundFleet(), contendedFleet()};
    fleets[1].schedule = Schedule::SEQUENTIAL;
    for (const ServingFleetConfig &fleet : fleets) {
        for (std::size_t batch : {1u, 8u, 64u}) {
            for (double ctx : {128.0, 4096.0}) {
                DecodeStepBreakdown bd =
                    decodeStepBreakdown(fleet, batch, ctx);
                const double step =
                    decodeStepSeconds(fleet, batch, ctx);
                // Bitwise: the breakdown must not perturb event times.
                EXPECT_EQ(std::memcmp(&bd.totalSeconds, &step,
                                      sizeof(double)), 0)
                    << scheduleName(fleet.schedule) << " b=" << batch;
                EXPECT_DOUBLE_EQ(
                    bd.computeSeconds + bd.commSeconds,
                    bd.totalSeconds);
                EXPECT_GE(bd.computeSeconds, 0.0);
                EXPECT_GE(bd.commSeconds, 0.0);
            }
        }
    }
}

// Sim-time timeline + flight recorder ------------------------------------

TEST(ServingObservability, TimelineByteIdenticalAcrossWidthsAndReruns)
{
    auto capture = [&]() {
        ServingFleetConfig fleet = contendedFleet();
        obs::Timeline timeline;
        fleet.timeline = &timeline;
        simulateServing(fleet, contendedTraffic(), 21);
        return timeline.chromeJson();
    };

    setParallelForWidth(1);
    std::string w1 = capture();
    setParallelForWidth(2);
    std::string w2 = capture();
    setParallelForWidth(0);
    std::string whw = capture();
    std::string rerun = capture();
    EXPECT_EQ(w1, w2);
    EXPECT_EQ(w1, whw);
    EXPECT_EQ(w1, rerun);
    EXPECT_GT(w1.size(), 2u);
}

TEST(ServingObservability, TimelineCoversFleetRequestAndFlowTracks)
{
    ServingFleetConfig fleet = contendedFleet();
    obs::Timeline timeline;
    fleet.timeline = &timeline;
    ServingMetrics m = simulateServing(fleet, contendedTraffic(), 21);
    ASSERT_GT(m.preemptions, 0u);
    EXPECT_GT(timeline.eventCount(), 0u);
    EXPECT_EQ(timeline.droppedCount(), 0u);

    const std::string json = timeline.chromeJson();
    // Lifecycle slices, engine slices, flows and markers all present.
    for (const char *needle :
         {"\"decode.step\"", "\"decode.compute\"", "\"decode.comm\"",
          "\"prefill\"", "\"kv.handoff\"", "\"preempt\"",
          "\"preempt.recompute\"", "\"queue.wait\"",
          "\"bp\":\"e\"", "\"ph\":\"s\"", "\"ph\":\"M\""}) {
        EXPECT_NE(json.find(needle), std::string::npos) << needle;
    }
}

TEST(ServingObservability, TimelineSamplingThinsRequestTracks)
{
    ServingFleetConfig fleet = contendedFleet();
    obs::Timeline all;
    fleet.timeline = &all;
    simulateServing(fleet, contendedTraffic(), 21);

    obs::Timeline::Config cfg;
    cfg.sampleEvery = 8;
    obs::Timeline thinned(cfg);
    fleet.timeline = &thinned;
    simulateServing(fleet, contendedTraffic(), 21);

    EXPECT_LT(thinned.eventCount(), all.eventCount() / 2);
    EXPECT_GT(thinned.eventCount(), 0u);

    // Sampling must not perturb the simulation itself.
    ServingFleetConfig bare = contendedFleet();
    ServingMetrics m_bare =
        simulateServing(bare, contendedTraffic(), 21);
    fleet.timeline = nullptr;
    ServingMetrics m_obs = simulateServing(fleet, contendedTraffic(), 21);
    EXPECT_EQ(m_bare.simSeconds, m_obs.simSeconds);
    EXPECT_EQ(m_bare.decodeSteps, m_obs.decodeSteps);
}

TEST(ServingObservability, FlightRecorderCapturesFleetGauges)
{
    ServingFleetConfig fleet = contendedFleet();
    obs::FlightRecorder recorder(128);
    fleet.recorder = &recorder;
    fleet.recorderIntervalSeconds = 0.1;
    ServingMetrics m = simulateServing(fleet, contendedTraffic(), 21);
    ASSERT_GT(m.simSeconds, 1.0);

    std::vector<std::string> chans = recorder.channels();
    auto has = [&](const char *name) {
        for (const std::string &c : chans)
            if (c == name)
                return true;
        return false;
    };
    EXPECT_TRUE(has("inference.serving.resident"));
    EXPECT_TRUE(has("inference.serving.ready_queue"));
    EXPECT_TRUE(has("inference.serving.prefill_queue"));
    EXPECT_TRUE(has("inference.serving.tokens_per_sec"));
    EXPECT_TRUE(has("inference.serving.kv_free_blocks"));

    // Samples land on the configured cadence within the sim span.
    auto samples = recorder.samples("inference.serving.resident");
    ASSERT_GE(samples.size(), 2u);
    for (std::size_t i = 1; i < samples.size(); ++i)
        EXPECT_GT(samples[i].t, samples[i - 1].t);
    EXPECT_LE(samples.back().t, m.simSeconds + 0.1);
}

} // namespace
} // namespace dsv3::inference::serving
