/**
 * @file
 * Tests for MTP speculative decoding, decode rooflines, and the dual
 * micro-batch overlap model.
 */

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "inference/mtp.hh"
#include "inference/overlap.hh"
#include "inference/roofline.hh"
#include "model/config.hh"
#include "model/hardware.hh"
#include "model/params.hh"

namespace dsv3::inference {
namespace {

TEST(Mtp, PaperSpeedupAt90Percent)
{
    // Sec 2.3.3: 80-90% acceptance -> ~1.8x generation TPS.
    MtpConfig cfg;
    cfg.acceptanceRate = 0.9;
    MtpResult r = mtpAnalytic(cfg);
    EXPECT_NEAR(r.speedup, 1.8, 0.05);
}

TEST(Mtp, TokensPerStepIsOnePlusAcceptance)
{
    MtpConfig cfg;
    cfg.acceptanceRate = 0.85;
    EXPECT_NEAR(mtpAnalytic(cfg).meanTokensPerStep, 1.85, 1e-12);
}

TEST(Mtp, ChainedDraftsGeometric)
{
    MtpConfig cfg;
    cfg.acceptanceRate = 0.5;
    cfg.draftTokens = 3;
    // 1 + 0.5 + 0.25 + 0.125 = 1.875.
    EXPECT_NEAR(mtpAnalytic(cfg).meanTokensPerStep, 1.875, 1e-12);
}

TEST(Mtp, ZeroAcceptanceIsOverheadOnly)
{
    MtpConfig cfg;
    cfg.acceptanceRate = 0.0;
    MtpResult r = mtpAnalytic(cfg);
    EXPECT_DOUBLE_EQ(r.meanTokensPerStep, 1.0);
    EXPECT_LT(r.speedup, 1.0); // pure overhead
}

TEST(Mtp, SimulationMatchesAnalytic)
{
    MtpConfig cfg;
    cfg.acceptanceRate = 0.85;
    Rng rng(42);
    MtpResult sim = mtpSimulate(cfg, rng, 200000);
    MtpResult ana = mtpAnalytic(cfg);
    EXPECT_NEAR(sim.meanTokensPerStep, ana.meanTokensPerStep, 0.01);
    EXPECT_NEAR(sim.speedup, ana.speedup, 0.01);
}

TEST(Mtp, SpeedupMonotoneInAcceptance)
{
    double prev = 0.0;
    for (double p : {0.5, 0.6, 0.7, 0.8, 0.9, 1.0}) {
        MtpConfig cfg;
        cfg.acceptanceRate = p;
        double s = mtpAnalytic(cfg).speedup;
        EXPECT_GT(s, prev);
        prev = s;
    }
}

TEST(Roofline, DeepSeekV2OnAiPcNearly20Tps)
{
    // Sec 2.2.2: MoE on an AI SoC reaches ~20+ TPS.
    DecodeScenario s;
    s.modelConfig = model::deepSeekV2();
    model::GpuSpec soc = model::aiPcSoc();
    s.memBytesPerSec = soc.hbmBytesPerSec;
    s.computeFlopsPerSec = soc.fp8Tflops * 1e12;
    s.weightBytesPerParam = 1.0;
    DecodeEstimate e = decodeEstimate(s);
    EXPECT_GT(e.tokensPerSecond, 18.0);
    EXPECT_LT(e.tokensPerSecond, 40.0);
    EXPECT_TRUE(e.memoryBound);
}

TEST(Roofline, Dense72BSingleDigitTps)
{
    DecodeScenario s;
    s.modelConfig = model::qwen25_72B();
    s.memBytesPerSec = model::aiPcSoc().hbmBytesPerSec;
    s.weightBytesPerParam = 1.0;
    DecodeEstimate e = decodeEstimate(s);
    EXPECT_LT(e.tokensPerSecond, 10.0);
}

TEST(Roofline, KTransformersNearly20Tps)
{
    // Sec 2.2.2: full V3 on a consumer-GPU server at ~20 TPS.
    double tps = ktransformersTps(
        model::deepSeekV3(), model::consumerGpu().hbmBytesPerSec,
        model::ktransformersHostDramBytesPerSec(), 1.0);
    EXPECT_GT(tps, 15.0);
    EXPECT_LT(tps, 25.0);
}

TEST(Roofline, DecodeIsMemoryBoundAtBatch1)
{
    DecodeScenario s;
    s.modelConfig = model::deepSeekV3();
    model::NodeSpec node = model::h800Node();
    s.memBytesPerSec = node.gpu.hbmBytesPerSec;
    s.computeFlopsPerSec = node.gpu.fp8Tflops * 1e12;
    s.weightBytesPerParam = 1.0;
    DecodeEstimate e = decodeEstimate(s);
    // The GEMV regime (Sec 2.1.2): memory time dominates compute.
    EXPECT_TRUE(e.memoryBound);
    EXPECT_GT(e.memSecondsPerStep / e.computeSecondsPerStep, 10.0);
}

TEST(Roofline, BatchingAmortizesWeights)
{
    DecodeScenario s;
    s.modelConfig = model::qwen25_72B();
    s.memBytesPerSec = 3.35e12;
    s.weightBytesPerParam = 1.0;
    s.batch = 1;
    double tps1 = decodeEstimate(s).tokensPerSecond;
    s.batch = 32;
    double tps32 = decodeEstimate(s).tokensPerSecond;
    EXPECT_GT(tps32, tps1 * 10.0);
}

TEST(Roofline, MoeBatchActivatesMoreExperts)
{
    // Unlike dense models, batching a MoE pulls in more expert
    // weights, so the amortization is weaker.
    DecodeScenario moe;
    moe.modelConfig = model::deepSeekV3();
    moe.memBytesPerSec = 3.35e12;
    moe.weightBytesPerParam = 1.0;
    moe.batch = 1;
    double w1 = decodeEstimate(moe).weightBytesPerStep;
    moe.batch = 8;
    double w8 = decodeEstimate(moe).weightBytesPerStep;
    EXPECT_GT(w8, w1 * 4.0);
    // But never more than the full expert pool.
    moe.batch = 10000;
    double wmax = decodeEstimate(moe).weightBytesPerStep;
    model::ParamCounts p = model::countParams(moe.modelConfig);
    EXPECT_LE(wmax, p.total() * 1.01);
}

TEST(Roofline, ExpertUnionMatchesMonteCarlo)
{
    // Regression: the batched distinct-expert count used to be the
    // linear cap min(1, topK*batch/E) * E, which says a batch of 32
    // V3 tokens (topK=8, E=256) touches the full expert pool; the
    // true expected union is E * (1 - (1 - topK/E)^batch) ~ 63.9%.
    // Validate the closed form against direct sampling of top-K
    // without-replacement routing.
    model::ModelConfig cfg = model::deepSeekV3();
    const std::size_t E = cfg.moe->routedExperts;
    const std::size_t k = cfg.moe->topK;
    dsv3::Rng rng(1234);
    for (std::size_t batch : {2ul, 8ul, 32ul, 128ul}) {
        const int trials = 2000;
        double mc = 0.0;
        std::vector<std::uint8_t> hit(E);
        std::vector<std::size_t> deck(E);
        for (int t = 0; t < trials; ++t) {
            std::fill(hit.begin(), hit.end(), 0);
            for (std::size_t b = 0; b < batch; ++b) {
                for (std::size_t e = 0; e < E; ++e)
                    deck[e] = e;
                for (std::size_t j = 0; j < k; ++j) {
                    std::size_t pick =
                        j + (std::size_t)rng.nextBounded(E - j);
                    std::swap(deck[j], deck[pick]);
                    hit[deck[j]] = 1;
                }
            }
            for (std::size_t e = 0; e < E; ++e)
                mc += hit[e];
        }
        mc /= (double)trials;
        double miss = 1.0 - (double)k / (double)E;
        double analytic =
            (double)E * (1.0 - std::pow(miss, (double)batch));
        EXPECT_NEAR(mc, analytic, 0.02 * analytic)
            << "batch " << batch;
    }
}

TEST(Roofline, ExpertUnionSaturatesBelowLinearCap)
{
    // At batch 32 the old linear model claimed all 256 routed experts
    // are resident; expected coverage says ~64%. The weight traffic
    // must sit strictly between the batch-1 floor and the full pool.
    DecodeScenario moe;
    moe.modelConfig = model::deepSeekV3();
    moe.memBytesPerSec = 3.35e12;
    moe.weightBytesPerParam = 1.0;

    model::ParamCounts p = model::countParams(moe.modelConfig);
    const model::MoeConfig &m = *moe.modelConfig.moe;
    double per_token =
        p.moeRouted * (double)m.topK / (double)m.routedExperts;

    moe.batch = 32;
    double w32 = decodeEstimate(moe).weightBytesPerStep;
    double dense = p.matmulActivePerToken(moe.modelConfig) - per_token;
    double routed32 = w32 - dense;
    double coverage =
        1.0 - std::pow(1.0 - (double)m.topK / (double)m.routedExperts,
                       32.0);
    EXPECT_NEAR(routed32, p.moeRouted * coverage,
                1e-6 * p.moeRouted);
    // Strictly below the full pool the linear cap predicted.
    EXPECT_LT(routed32, p.moeRouted * 0.99);
    EXPECT_GT(routed32, per_token);
}

TEST(Roofline, LongContextCostsKvBandwidth)
{
    DecodeScenario s;
    s.modelConfig = model::qwen25_72B();
    s.memBytesPerSec = 3.35e12;
    s.context = 4096;
    double tps_short = decodeEstimate(s).tokensPerSecond;
    s.context = 131072;
    double tps_long = decodeEstimate(s).tokensPerSecond;
    EXPECT_LT(tps_long, tps_short);
}

TEST(Roofline, MlaShrinksKvPenaltyVsGqa)
{
    // At 128k context the KV-read penalty is far smaller for MLA.
    DecodeScenario mla;
    mla.modelConfig = model::deepSeekV3();
    mla.memBytesPerSec = 3.35e12;
    mla.context = 131072;
    DecodeScenario gqa = mla;
    gqa.modelConfig = model::llama31_405B();
    EXPECT_LT(decodeEstimate(mla).kvBytesPerStep,
              decodeEstimate(gqa).kvBytesPerStep / 7.0);
}

TEST(Overlap, PerfectOverlapWhenBalanced)
{
    LayerStageTimes st{50e-6, 50e-6, 50e-6, 50e-6};
    OverlapResult r = dualMicroBatchOverlap(st);
    EXPECT_DOUBLE_EQ(r.sequentialLayerTime, 200e-6);
    EXPECT_DOUBLE_EQ(r.overlappedLayerTime, 100e-6);
    EXPECT_DOUBLE_EQ(r.speedup, 2.0);
    EXPECT_DOUBLE_EQ(r.gpuUtilization, 1.0);
}

TEST(Overlap, CommBoundLimitsUtilization)
{
    LayerStageTimes st{25e-6, 100e-6, 25e-6, 100e-6};
    OverlapResult r = dualMicroBatchOverlap(st);
    EXPECT_DOUBLE_EQ(r.overlappedLayerTime, 200e-6);
    EXPECT_DOUBLE_EQ(r.gpuUtilization, 0.25);
}

TEST(Overlap, ComputeBoundHidesAllComm)
{
    LayerStageTimes st{200e-6, 10e-6, 200e-6, 10e-6};
    OverlapResult r = dualMicroBatchOverlap(st);
    EXPECT_DOUBLE_EQ(r.overlappedLayerTime, 400e-6);
    EXPECT_DOUBLE_EQ(r.gpuUtilization, 1.0);
}

TEST(Overlap, SpeedupNeverExceedsTwo)
{
    Rng rng(3);
    for (int i = 0; i < 200; ++i) {
        LayerStageTimes st{rng.uniform(1e-6, 1e-4),
                           rng.uniform(1e-6, 1e-4),
                           rng.uniform(1e-6, 1e-4),
                           rng.uniform(1e-6, 1e-4)};
        OverlapResult r = dualMicroBatchOverlap(st);
        EXPECT_LE(r.speedup, 2.0 + 1e-12);
        EXPECT_GE(r.speedup, 1.0);
    }
}

} // namespace
} // namespace dsv3::inference
