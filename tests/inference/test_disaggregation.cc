/**
 * @file
 * Tests for the Sec 2.3.1 prefill/decode disaggregation model.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "inference/disaggregation.hh"

namespace dsv3::inference {
namespace {

TEST(Disaggregation, DisaggTpotIsClean)
{
    ServingWorkload w;
    auto r = evaluateDisaggregation(w);
    EXPECT_DOUBLE_EQ(r.disaggTpot, w.decodeTpotSeconds);
}

TEST(Disaggregation, ColocationInflatesTpot)
{
    ServingWorkload w;
    auto r = evaluateDisaggregation(w);
    EXPECT_GT(r.colocatedTpot, r.disaggTpot);
    EXPECT_GT(r.tpotImprovement, 1.0);
}

TEST(Disaggregation, KvHandoffCostsTtft)
{
    ServingWorkload w;
    auto r = evaluateDisaggregation(w);
    EXPECT_NEAR(r.disaggTtft - r.colocatedTtft, w.kvTransferSeconds,
                1e-12);
}

TEST(Disaggregation, LongerPromptsIncreasePrefillShare)
{
    ServingWorkload shorter;
    shorter.promptTokens = 1024.0;
    ServingWorkload longer;
    longer.promptTokens = 16384.0;
    auto a = evaluateDisaggregation(shorter);
    auto b = evaluateDisaggregation(longer);
    EXPECT_GT(b.colocatedDutyCycle, a.colocatedDutyCycle);
    EXPECT_GT(b.tpotImprovement, a.tpotImprovement);
}

TEST(Disaggregation, GpuDemandScalesWithLoad)
{
    ServingWorkload w;
    auto base = evaluateDisaggregation(w);
    w.requestsPerSecond *= 2.0;
    auto doubled = evaluateDisaggregation(w);
    EXPECT_NEAR(doubled.prefillGpus, 2.0 * base.prefillGpus, 1e-9);
    EXPECT_NEAR(doubled.decodeGpus, 2.0 * base.decodeGpus, 1e-9);
    // TPOT ratios are load-invariant in this model.
    EXPECT_NEAR(doubled.tpotImprovement, base.tpotImprovement, 1e-9);
}

TEST(Disaggregation, DutyCycleBounded)
{
    ServingWorkload w;
    auto r = evaluateDisaggregation(w);
    EXPECT_GT(r.colocatedDutyCycle, 0.0);
    EXPECT_LT(r.colocatedDutyCycle, 1.0);
}

TEST(Disaggregation, DecodeOnlyWorkloadNeedsNoPrefillPool)
{
    ServingWorkload w;
    w.promptTokens = 1.0; // negligible prompts
    auto r = evaluateDisaggregation(w);
    EXPECT_LT(r.colocatedDutyCycle, 0.01);
    EXPECT_NEAR(r.tpotImprovement, 1.0, 0.01);
}

TEST(Disaggregation, PrefillOnlyWorkloadSaturatesInsteadOfAborting)
{
    // Regression: genTokens == 0 means no decode demand, so prefill
    // takes the whole colocated pool. This used to trip an assert;
    // now it reports saturation with an infinite colocated TPOT.
    ServingWorkload w;
    w.genTokens = 0.0;
    auto r = evaluateDisaggregation(w);
    EXPECT_TRUE(r.saturated);
    EXPECT_DOUBLE_EQ(r.colocatedDutyCycle, 1.0);
    EXPECT_TRUE(std::isinf(r.colocatedTpot));
    EXPECT_TRUE(std::isinf(r.tpotImprovement));
    // Disaggregated numbers stay finite and meaningful.
    EXPECT_GT(r.disaggTpot, 0.0);
    EXPECT_TRUE(std::isfinite(r.disaggTtft));
    EXPECT_DOUBLE_EQ(r.decodeGpus, 0.0);
    EXPECT_GT(r.prefillGpus, 0.0);
}

TEST(Disaggregation, NearSaturationStaysFinite)
{
    // Just below saturation the colocated TPOT is huge but finite.
    ServingWorkload w;
    w.genTokens = 1e-6;
    auto r = evaluateDisaggregation(w);
    EXPECT_FALSE(r.saturated);
    EXPECT_TRUE(std::isfinite(r.colocatedTpot));
    EXPECT_GT(r.colocatedTpot, w.decodeTpotSeconds);
}

} // namespace
} // namespace dsv3::inference
