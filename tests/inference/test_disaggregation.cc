/**
 * @file
 * Tests for the Sec 2.3.1 prefill/decode disaggregation model.
 */

#include <gtest/gtest.h>

#include "inference/disaggregation.hh"

namespace dsv3::inference {
namespace {

TEST(Disaggregation, DisaggTpotIsClean)
{
    ServingWorkload w;
    auto r = evaluateDisaggregation(w);
    EXPECT_DOUBLE_EQ(r.disaggTpot, w.decodeTpotSeconds);
}

TEST(Disaggregation, ColocationInflatesTpot)
{
    ServingWorkload w;
    auto r = evaluateDisaggregation(w);
    EXPECT_GT(r.colocatedTpot, r.disaggTpot);
    EXPECT_GT(r.tpotImprovement, 1.0);
}

TEST(Disaggregation, KvHandoffCostsTtft)
{
    ServingWorkload w;
    auto r = evaluateDisaggregation(w);
    EXPECT_NEAR(r.disaggTtft - r.colocatedTtft, w.kvTransferSeconds,
                1e-12);
}

TEST(Disaggregation, LongerPromptsIncreasePrefillShare)
{
    ServingWorkload shorter;
    shorter.promptTokens = 1024.0;
    ServingWorkload longer;
    longer.promptTokens = 16384.0;
    auto a = evaluateDisaggregation(shorter);
    auto b = evaluateDisaggregation(longer);
    EXPECT_GT(b.colocatedDutyCycle, a.colocatedDutyCycle);
    EXPECT_GT(b.tpotImprovement, a.tpotImprovement);
}

TEST(Disaggregation, GpuDemandScalesWithLoad)
{
    ServingWorkload w;
    auto base = evaluateDisaggregation(w);
    w.requestsPerSecond *= 2.0;
    auto doubled = evaluateDisaggregation(w);
    EXPECT_NEAR(doubled.prefillGpus, 2.0 * base.prefillGpus, 1e-9);
    EXPECT_NEAR(doubled.decodeGpus, 2.0 * base.decodeGpus, 1e-9);
    // TPOT ratios are load-invariant in this model.
    EXPECT_NEAR(doubled.tpotImprovement, base.tpotImprovement, 1e-9);
}

TEST(Disaggregation, DutyCycleBounded)
{
    ServingWorkload w;
    auto r = evaluateDisaggregation(w);
    EXPECT_GT(r.colocatedDutyCycle, 0.0);
    EXPECT_LT(r.colocatedDutyCycle, 1.0);
}

TEST(Disaggregation, DecodeOnlyWorkloadNeedsNoPrefillPool)
{
    ServingWorkload w;
    w.promptTokens = 1.0; // negligible prompts
    auto r = evaluateDisaggregation(w);
    EXPECT_LT(r.colocatedDutyCycle, 0.01);
    EXPECT_NEAR(r.tpotImprovement, 1.0, 0.01);
}

} // namespace
} // namespace dsv3::inference
