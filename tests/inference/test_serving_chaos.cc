/**
 * @file
 * Tests for fault-tolerant serving: config validation, the no-fault
 * byte-identity guarantee, engine-death failover and retry budgets,
 * shed/reject/preempt outcome separation, degraded-link slowdown,
 * availability accounting against explicit and generated schedules,
 * and byte-identical chaos runs across thread widths.
 */

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/sweep.hh"
#include "common/thread_pool.hh"
#include "fault/schedule.hh"
#include "inference/serving/chaos.hh"
#include "inference/serving/simulator.hh"
#include "inference/serving/traffic.hh"
#include "model/config.hh"
#include "model/kv_cache.hh"
#include "obs/flight_recorder.hh"
#include "obs/timeline.hh"

namespace dsv3::inference::serving {
namespace {

// Shared scenario helpers ------------------------------------------------

/** Comm-bound fleet (see test_serving.cc): the all-to-all floor is
 *  the only per-step cost, so chaos effects stand out cleanly. */
ServingFleetConfig
chaosFleet(std::size_t engines)
{
    ServingFleetConfig fleet;
    fleet.modelConfig = model::deepSeekV3();
    fleet.memBytesPerSec = 1e30;
    fleet.computeFlopsPerSec = 0.0;
    fleet.schedule = Schedule::DUAL_MICROBATCH;
    fleet.deployment = Deployment::DISAGGREGATED;
    fleet.decodeEngines = engines;
    fleet.maxBatchPerEngine = 64;
    fleet.prefillServers = 64;
    fleet.prefillTokensPerSecPerServer = 1e9;
    fleet.kvHandoffSeconds = 0.0;
    return fleet;
}

TrafficConfig
closedLoop(std::size_t requests, std::size_t gen,
           std::size_t concurrency = 64)
{
    TrafficConfig traffic;
    traffic.process = ArrivalProcess::CLOSED_LOOP;
    traffic.requests = requests;
    traffic.closedLoopConcurrency = concurrency;
    traffic.promptTokensMin = traffic.promptTokensMax = 128;
    traffic.genTokensMin = traffic.genTokensMax = gen;
    return traffic;
}

fault::FaultSchedule
explicitSchedule(std::vector<fault::FaultEvent> events)
{
    return fault::FaultSchedule(std::move(events));
}

fault::FaultEvent
rankEvent(double t, fault::FaultKind kind, std::size_t rank)
{
    fault::FaultEvent ev;
    ev.time = t;
    ev.kind = kind;
    ev.rank = rank;
    return ev;
}

/** LINK_DEGRADED on engine @p eng's uplink (servingFaultDomain maps
 *  link r to endpoints r -> engines + r). factor 1.0 repairs. */
fault::FaultEvent
linkEvent(double t, std::size_t eng, std::size_t engines,
          double factor)
{
    fault::FaultEvent ev;
    ev.time = t;
    ev.kind = fault::FaultKind::LINK_DEGRADED;
    ev.nodeA = (net::NodeId)eng;
    ev.nodeB = (net::NodeId)(engines + eng);
    ev.factor = factor;
    return ev;
}

/** Every deterministic scalar a chaos run produces. */
std::vector<double>
chaosFingerprint(const ServingMetrics &m)
{
    std::vector<double> out = {
        (double)m.requestsCompleted, (double)m.requestsRejected,
        (double)m.requestsShed,      (double)m.requestsFailed,
        (double)m.requestsStranded,  (double)m.retries,
        (double)m.failovers,         (double)m.engineDeaths,
        (double)m.preemptions,       (double)m.decodeSteps,
        (double)m.decodeTokens,      m.engineDowntimeSeconds,
        m.availability,              (double)m.minLiveEngines,
        m.simSeconds,                m.ttft.mean,
        m.ttft.p99,                  m.tpot.mean,
        m.tpot.p99,                  m.tokensPerSecond,
        m.sloGoodputTokensPerSecond, m.totalLatencySeconds};
    for (std::size_t s = 0; s < kNumRequestStates; ++s)
        out.push_back(m.stateSeconds[s]);
    return out;
}

// Config validation (satellite: reject nonsense configs) -----------------

using ChaosValidationDeathTest = ::testing::Test;

TEST(ChaosValidationDeathTest, ZeroEnginesRejected)
{
    ServingFleetConfig fleet = chaosFleet(0);
    EXPECT_DEATH(simulateServing(fleet, closedLoop(4, 8), 1),
                 "decodeEngines must be >= 1");
}

TEST(ChaosValidationDeathTest, ZeroKvBlockTokensRejected)
{
    ServingFleetConfig fleet = chaosFleet(1);
    fleet.kvBlockTokens = 0;
    EXPECT_DEATH(simulateServing(fleet, closedLoop(4, 8), 1),
                 "kvBlockTokens must be >= 1");
}

TEST(ChaosValidationDeathTest, NegativeKvBudgetRejected)
{
    ServingFleetConfig fleet = chaosFleet(1);
    fleet.kvBudgetBytesPerEngine = -1.0;
    EXPECT_DEATH(simulateServing(fleet, closedLoop(4, 8), 1),
                 "kvBudgetBytesPerEngine");
}

TEST(ChaosValidationDeathTest, NonPositiveOpenLoopRateRejected)
{
    ServingFleetConfig fleet = chaosFleet(1);
    TrafficConfig traffic;
    traffic.process = ArrivalProcess::POISSON;
    traffic.requests = 4;
    traffic.requestsPerSecond = -2.0;
    EXPECT_DEATH(simulateServing(fleet, traffic, 1),
                 "requestsPerSecond must be > 0");
}

TEST(ChaosValidationDeathTest, ZeroRequestsRejected)
{
    ServingFleetConfig fleet = chaosFleet(1);
    TrafficConfig traffic;
    traffic.requests = 0;
    EXPECT_DEATH(simulateServing(fleet, traffic, 1),
                 "requests must be >= 1");
}

TEST(ChaosValidationDeathTest, BadBackoffMultiplierRejected)
{
    ServingFleetConfig fleet = chaosFleet(2);
    fleet.chaos.schedule = explicitSchedule(
        {rankEvent(1.0, fault::FaultKind::RANK_DOWN, 0)});
    fleet.chaos.backoffMultiplier = 0.5;
    EXPECT_DEATH(simulateServing(fleet, closedLoop(4, 8), 1),
                 "backoffMultiplier");
}

TEST(ChaosValidationDeathTest, BadProbeIntervalRejected)
{
    ServingFleetConfig fleet = chaosFleet(2);
    fleet.chaos.schedule = explicitSchedule(
        {rankEvent(1.0, fault::FaultKind::RANK_DOWN, 0)});
    fleet.chaos.probeIntervalSeconds = 0.0;
    EXPECT_DEATH(simulateServing(fleet, closedLoop(4, 8), 1),
                 "probeIntervalSeconds");
}

TEST(ChaosValidation, ChaosKnobsUncheckedWhenChaosOff)
{
    // An invalid probe interval is irrelevant -- and must not trip an
    // assert -- while the schedule is empty and the shed cap is off.
    ServingFleetConfig fleet = chaosFleet(1);
    fleet.chaos.probeIntervalSeconds = 0.0;
    ServingMetrics m = simulateServing(fleet, closedLoop(8, 16), 1);
    EXPECT_EQ(m.requestsCompleted, 8u);
}

// No-fault byte identity -------------------------------------------------

TEST(ServingChaos, EmptyScheduleByteIdenticalToNoChaosConfig)
{
    // Chaos policy knobs may differ arbitrarily: with no schedule and
    // no shed cap the run must be bit-for-bit the no-fault run.
    ServingFleetConfig plain = chaosFleet(2);
    ServingMetrics a = simulateServing(plain, closedLoop(64, 64), 9);

    ServingFleetConfig wired = chaosFleet(2);
    wired.chaos.probeIntervalSeconds = 0.125;
    wired.chaos.retryBudget = 7;
    wired.chaos.backoffBaseSeconds = 1.0;
    wired.chaos.recoverySeconds = 3.0;
    wired.chaos.drainBelowFactor = 0.9;
    ServingMetrics b = simulateServing(wired, closedLoop(64, 64), 9);

    auto fa = chaosFingerprint(a), fb = chaosFingerprint(b);
    ASSERT_EQ(fa.size(), fb.size());
    for (std::size_t i = 0; i < fa.size(); ++i)
        EXPECT_EQ(std::memcmp(&fa[i], &fb[i], sizeof(double)), 0)
            << "field " << i;
    EXPECT_EQ(a.requestsShed, 0u);
    EXPECT_EQ(a.requestsFailed, 0u);
    EXPECT_EQ(a.retries, 0u);
    EXPECT_DOUBLE_EQ(a.availability, 1.0);
    EXPECT_EQ(a.minLiveEngines, 2u);
    EXPECT_DOUBLE_EQ(a.stateSeconds[(int)RequestState::FAILOVER], 0.0);
    EXPECT_DOUBLE_EQ(
        a.stateSeconds[(int)RequestState::RETRY_BACKOFF], 0.0);
}

TEST(ServingChaos, EmptyScheduleTimelineByteIdentical)
{
    auto capture = [](bool wire_chaos) {
        ServingFleetConfig fleet = chaosFleet(2);
        if (wire_chaos) {
            fleet.chaos.probeIntervalSeconds = 0.125;
            fleet.chaos.retryBudget = 9;
        }
        obs::Timeline timeline;
        fleet.timeline = &timeline;
        simulateServing(fleet, closedLoop(48, 48), 13);
        return timeline.chromeJson();
    };
    EXPECT_EQ(capture(false), capture(true));
}

// Failover ---------------------------------------------------------------

TEST(ServingChaos, EngineDeathFailsOverToSurvivor)
{
    ServingFleetConfig fleet = chaosFleet(2);
    fleet.chaos.schedule = explicitSchedule(
        {rankEvent(2.0, fault::FaultKind::RANK_DOWN, 0)});
    TrafficConfig traffic = closedLoop(96, 512, 32);

    ServingMetrics m = simulateServing(fleet, traffic, 17);
    // Engine 0's residents lose their KV blocks and recompute on
    // engine 1; nobody is lost, nobody exhausts the budget.
    EXPECT_EQ(m.requestsCompleted, 96u);
    EXPECT_EQ(m.requestsFailed, 0u);
    EXPECT_EQ(m.requestsStranded, 0u);
    EXPECT_GT(m.failovers, 0u);
    EXPECT_GT(m.retries, 0u);
    EXPECT_EQ(m.engineDeaths, 1u);
    EXPECT_EQ(m.minLiveEngines, 1u);
    EXPECT_LT(m.availability, 1.0);
    EXPECT_GT(m.engineDowntimeSeconds, 0.0);
    // Failed-over requests spend time in the chaos-only states.
    EXPECT_GT(m.stateSeconds[(int)RequestState::RETRY_BACKOFF], 0.0);
    EXPECT_GT(m.stateSeconds[(int)RequestState::FAILOVER], 0.0);
    // The digests cover completed requests only, all of them.
    EXPECT_EQ(m.ttft.count, m.requestsCompleted);
    EXPECT_EQ(m.tpot.count, m.requestsCompleted);
}

TEST(ServingChaos, ExplicitOutageDowntimeMatchesSchedule)
{
    // Engine 0 is unreachable exactly over [5, 15): 10 engine-seconds
    // of downtime, integrated from actual (not observed) state.
    ServingFleetConfig fleet = chaosFleet(2);
    fleet.chaos.schedule = explicitSchedule(
        {rankEvent(5.0, fault::FaultKind::RANK_DOWN, 0),
         rankEvent(15.0, fault::FaultKind::RANK_UP, 0)});
    TrafficConfig traffic = closedLoop(512, 256, 32);

    ServingMetrics m = simulateServing(fleet, traffic, 23);
    ASSERT_GT(m.simSeconds, 15.0)
        << "scenario must outlive the outage";
    EXPECT_NEAR(m.engineDowntimeSeconds, 10.0, 1e-9);
    EXPECT_NEAR(m.availability,
                1.0 - 10.0 / (2.0 * m.simSeconds), 1e-12);
    EXPECT_EQ(m.engineDeaths, 1u);
    EXPECT_EQ(m.requestsCompleted, 512u);
}

TEST(ServingChaos, LinkDownIsDeathLinkUpRepairs)
{
    // A hard NIC failure is indistinguishable from a crash to the
    // dispatcher: residents fail over, the engine later recovers.
    ServingFleetConfig fleet = chaosFleet(2);
    std::vector<fault::FaultEvent> events;
    fault::FaultEvent down;
    down.time = 3.0;
    down.kind = fault::FaultKind::LINK_DOWN;
    down.nodeA = 0;
    down.nodeB = 2;
    fault::FaultEvent up = down;
    up.time = 9.0;
    up.kind = fault::FaultKind::LINK_UP;
    events.push_back(down);
    events.push_back(up);
    fleet.chaos.schedule = explicitSchedule(events);

    ServingMetrics m = simulateServing(fleet, closedLoop(256, 512, 32),
                                       29);
    EXPECT_EQ(m.engineDeaths, 1u);
    EXPECT_GT(m.failovers, 0u);
    EXPECT_NEAR(m.engineDowntimeSeconds, 6.0, 1e-9);
    EXPECT_EQ(m.requestsCompleted, 256u);
}

// Retry budget (satellite: exhaustion semantics) -------------------------

TEST(ServingChaos, RetryBudgetExhaustionFailsRequests)
{
    // One engine flapping every few seconds with a budget of 1:
    // any request evicted twice is FAILED, not retried forever.
    ServingFleetConfig fleet = chaosFleet(1);
    std::vector<fault::FaultEvent> events;
    for (int cycle = 0; cycle < 3; ++cycle) {
        double base = 2.0 + 3.0 * cycle;
        events.push_back(
            rankEvent(base, fault::FaultKind::RANK_DOWN, 0));
        events.push_back(
            rankEvent(base + 1.0, fault::FaultKind::RANK_UP, 0));
    }
    fleet.chaos.schedule = explicitSchedule(events);
    fleet.chaos.retryBudget = 1;
    fleet.chaos.backoffBaseSeconds = 0.1;
    fleet.chaos.backoffMaxSeconds = 0.5;
    // Per-request service time exceeds the up-window of a flap
    // cycle, so residents are evicted (at least) twice.
    TrafficConfig traffic = closedLoop(64, 1024, 16);

    ServingMetrics m = simulateServing(fleet, traffic, 31);
    EXPECT_GT(m.requestsFailed, 0u);
    EXPECT_GT(m.requestsCompleted, 0u);
    // Every request ends in exactly one terminal bucket.
    EXPECT_EQ(m.requestsCompleted + m.requestsRejected +
                  m.requestsShed + m.requestsFailed +
                  m.requestsStranded,
              64u);
    // FAILED requests never contaminate the latency digests.
    EXPECT_EQ(m.ttft.count, m.requestsCompleted);
    EXPECT_EQ(m.tpot.count, m.requestsCompleted);
    for (std::size_t s = 0; s < kNumRequestStates; ++s)
        EXPECT_EQ(m.statePerRequest[s].count, m.requestsCompleted)
            << requestStateName((RequestState)s);
}

TEST(ServingChaos, PermanentFleetLossStrandsRatherThanSpins)
{
    // The only engine dies and never repairs: in-flight requests
    // park (STRANDED), the calendar drains, the sim terminates.
    ServingFleetConfig fleet = chaosFleet(1);
    fleet.chaos.schedule = explicitSchedule(
        {rankEvent(1.0, fault::FaultKind::RANK_DOWN, 0)});
    TrafficConfig traffic = closedLoop(32, 256, 8);

    ServingMetrics m = simulateServing(fleet, traffic, 37);
    EXPECT_GT(m.requestsStranded, 0u);
    // Closed-loop requests behind the stranded in-flight window never
    // arrive at all, so the terminal buckets bound but need not reach
    // the trace size.
    EXPECT_LE(m.requestsCompleted + m.requestsStranded +
                  m.requestsFailed,
              32u);
    EXPECT_EQ(m.minLiveEngines, 0u);
    EXPECT_EQ(m.ttft.count, m.requestsCompleted);
}

// Outcome separation (satellite: shed vs preempt vs reject) --------------

TEST(ServingChaos, ShedDistinctFromRejectAndPreempt)
{
    // Unlimited KV + a tiny admission cap: overload sheds, and only
    // sheds -- no OOM preemption, no fitsEver rejection.
    ServingFleetConfig fleet = chaosFleet(1);
    fleet.chaos.shedMaxOutstanding = 8;
    TrafficConfig traffic;
    traffic.process = ArrivalProcess::POISSON;
    traffic.requests = 200;
    traffic.requestsPerSecond = 500.0; // far above capacity
    traffic.promptTokensMin = traffic.promptTokensMax = 128;
    traffic.genTokensMin = traffic.genTokensMax = 64;

    ServingMetrics m = simulateServing(fleet, traffic, 41);
    EXPECT_GT(m.requestsShed, 0u);
    EXPECT_EQ(m.requestsRejected, 0u);
    EXPECT_EQ(m.preemptions, 0u);
    EXPECT_EQ(m.requestsCompleted + m.requestsShed, 200u);
    EXPECT_EQ(m.ttft.count, m.requestsCompleted);

    // KV pressure on the same fleet preempts but never sheds.
    ServingFleetConfig kv = chaosFleet(1);
    kv.prefillTokensPerSecPerServer = 1e6;
    const double per_tok = model::kvCacheBytesPerToken(kv.modelConfig);
    kv.kvBudgetBytesPerEngine = per_tok * 6.0 * 384.0;
    kv.kvBlockTokens = 32;
    kv.maxBatchPerEngine = 16;
    TrafficConfig pressured = closedLoop(64, 256, 16);
    ServingMetrics mk = simulateServing(kv, pressured, 7);
    EXPECT_GT(mk.preemptions, 0u);
    EXPECT_EQ(mk.requestsShed, 0u);
    EXPECT_EQ(mk.requestsRejected, 0u);

    // A prompt that can never fit is rejected, not shed.
    ServingFleetConfig tiny = chaosFleet(1);
    tiny.chaos.shedMaxOutstanding = 8;
    tiny.kvBudgetBytesPerEngine = per_tok * 256.0;
    TrafficConfig huge = closedLoop(8, 64, 4);
    huge.promptTokensMin = huge.promptTokensMax = 4096;
    ServingMetrics mr = simulateServing(tiny, huge, 3);
    EXPECT_EQ(mr.requestsRejected, 8u);
    EXPECT_EQ(mr.requestsShed, 0u);
    EXPECT_EQ(mr.requestsCompleted, 0u);
}

// Degraded links ---------------------------------------------------------

TEST(ServingChaos, DegradedLinkInflatesDecodeLatency)
{
    ServingFleetConfig healthy = chaosFleet(1);
    TrafficConfig traffic = closedLoop(64, 128);
    ServingMetrics base = simulateServing(healthy, traffic, 43);

    ServingFleetConfig degraded = chaosFleet(1);
    degraded.chaos.schedule =
        explicitSchedule({linkEvent(0.0, 0, 1, 0.6)});
    ServingMetrics slow = simulateServing(degraded, traffic, 43);

    // 0.6 is above drainBelowFactor: the engine keeps admitting but
    // every step's comm term stretches (plus the retry lottery).
    EXPECT_EQ(slow.requestsCompleted, 64u);
    EXPECT_EQ(slow.failovers, 0u);
    EXPECT_EQ(slow.engineDeaths, 0u);
    EXPECT_DOUBLE_EQ(slow.availability, 1.0);
    EXPECT_GT(slow.tpot.p50, base.tpot.p50);
    EXPECT_GT(slow.stateSeconds[(int)RequestState::DECODE_COMM],
              base.stateSeconds[(int)RequestState::DECODE_COMM]);
}

TEST(ServingChaos, DrainingEngineParksArrivalsUntilRepair)
{
    // Factor 0.3 is below drainBelowFactor 0.5: the only engine stops
    // admitting, arrivals park, and everything completes after the
    // repair at t = 6.
    ServingFleetConfig fleet = chaosFleet(1);
    fleet.chaos.schedule =
        explicitSchedule({linkEvent(2.0, 0, 1, 0.3),
                          linkEvent(6.0, 0, 1, 1.0)});
    TrafficConfig traffic = closedLoop(48, 96, 16);

    ServingMetrics m = simulateServing(fleet, traffic, 47);
    EXPECT_EQ(m.requestsCompleted, 48u);
    EXPECT_EQ(m.failovers, 0u);
    EXPECT_EQ(m.engineDeaths, 0u);
    // Draining is not downtime: the engine stays reachable.
    EXPECT_DOUBLE_EQ(m.availability, 1.0);
    EXPECT_DOUBLE_EQ(m.engineDowntimeSeconds, 0.0);
}

// Observability ----------------------------------------------------------

TEST(ServingChaos, TimelineAndRecorderCoverChaosEvents)
{
    ServingFleetConfig fleet = chaosFleet(2);
    fleet.chaos.schedule = explicitSchedule(
        {rankEvent(2.0, fault::FaultKind::RANK_DOWN, 0),
         rankEvent(6.0, fault::FaultKind::RANK_UP, 0),
         linkEvent(3.0, 1, 2, 0.7)});
    obs::Timeline timeline;
    obs::FlightRecorder recorder(256);
    fleet.timeline = &timeline;
    fleet.recorder = &recorder;
    fleet.recorderIntervalSeconds = 0.1;

    ServingMetrics m =
        simulateServing(fleet, closedLoop(96, 512, 32), 53);
    ASSERT_GT(m.failovers, 0u);

    const std::string json = timeline.chromeJson();
    for (const char *needle :
         {"\"engine.down\"", "\"engine.up\"", "\"health.dead\"",
          "\"health.recovering\"", "\"health.recovered\"",
          "\"fault.link_degraded\"", "\"failover\"", "\"retry\"",
          "\"failover.recompute\""}) {
        EXPECT_NE(json.find(needle), std::string::npos) << needle;
    }

    // The live-engine channel exists under chaos and dips to 1.
    auto samples = recorder.samples("inference.serving.live_engines");
    ASSERT_GE(samples.size(), 2u);
    double lo = 1e300, hi = 0.0;
    for (const auto &s : samples) {
        lo = std::min(lo, s.v);
        hi = std::max(hi, s.v);
    }
    EXPECT_EQ(lo, 1.0);
    EXPECT_EQ(hi, 2.0);

    // ... and is absent from a fault-free run.
    ServingFleetConfig plain = chaosFleet(2);
    obs::FlightRecorder quiet(256);
    plain.recorder = &quiet;
    simulateServing(plain, closedLoop(32, 32), 53);
    for (const std::string &c : quiet.channels())
        EXPECT_NE(c, "inference.serving.live_engines");
}

// Determinism ------------------------------------------------------------

TEST(ServingChaos, ByteIdenticalAcrossThreadWidthsAndReruns)
{
    const double fail_rates[] = {30.0, 60.0, 120.0}; // per hour
    const Deployment deps[] = {Deployment::DISAGGREGATED,
                               Deployment::COLOCATED};

    auto run_grid = [&]() {
        std::vector<std::vector<double>> out(6);
        runSweepGrid(3, 2, [&](const SweepPoint &p) {
            ServingFleetConfig fleet = chaosFleet(4);
            fleet.deployment = deps[p.col];
            fleet.prefillServers = 4;
            fleet.prefillTokensPerSecPerServer = 1e6;
            fault::FaultRates rates;
            rates.rankFailPerHour = fail_rates[p.row];
            rates.rankRepairSec = 5.0;
            rates.linkDegradePerHour = fail_rates[p.row];
            rates.degradeFactor = 0.6;
            rates.linkRepairSec = 5.0;
            fleet.chaos.schedule = fault::FaultSchedule::generate(
                servingFaultDomain(4), rates, 120.0, 99 + p.index);
            fleet.chaos.shedMaxOutstanding = 96;
            TrafficConfig traffic;
            traffic.process = ArrivalProcess::POISSON;
            traffic.requests = 300;
            traffic.requestsPerSecond = 6.0;
            traffic.genTokensMin = 64;
            traffic.genTokensMax = 192;
            ServingMetrics m =
                simulateServing(fleet, traffic, 1000 + p.index);
            out[p.index] = chaosFingerprint(m);
        });
        return out;
    };

    setParallelForWidth(1);
    auto w1 = run_grid();
    setParallelForWidth(2);
    auto w2 = run_grid();
    setParallelForWidth(0);
    auto whw = run_grid();
    auto whw2 = run_grid();
    setParallelForWidth(0);

    bool any_chaos = false;
    for (std::size_t i = 0; i < w1.size(); ++i) {
        ASSERT_EQ(w1[i].size(), w2[i].size());
        any_chaos |= w1[i][6] > 0.0; // failovers
        for (std::size_t j = 0; j < w1[i].size(); ++j) {
            EXPECT_EQ(std::memcmp(&w1[i][j], &w2[i][j],
                                  sizeof(double)), 0)
                << "cell " << i << " field " << j;
            EXPECT_EQ(std::memcmp(&w1[i][j], &whw[i][j],
                                  sizeof(double)), 0);
            EXPECT_EQ(std::memcmp(&whw[i][j], &whw2[i][j],
                                  sizeof(double)), 0);
        }
    }
    EXPECT_TRUE(any_chaos) << "grid never exercised a failover";
}

TEST(ServingChaos, ChaosTimelineByteIdenticalAcrossWidths)
{
    auto capture = [&]() {
        ServingFleetConfig fleet = chaosFleet(2);
        fleet.chaos.schedule = explicitSchedule(
            {rankEvent(2.0, fault::FaultKind::RANK_DOWN, 0),
             rankEvent(6.0, fault::FaultKind::RANK_UP, 0)});
        obs::Timeline timeline;
        fleet.timeline = &timeline;
        simulateServing(fleet, closedLoop(64, 96, 24), 59);
        return timeline.chromeJson();
    };
    setParallelForWidth(1);
    std::string w1 = capture();
    setParallelForWidth(2);
    std::string w2 = capture();
    setParallelForWidth(0);
    std::string whw = capture();
    std::string rerun = capture();
    EXPECT_EQ(w1, w2);
    EXPECT_EQ(w1, whw);
    EXPECT_EQ(w1, rerun);
}

// Availability vs the analytic bound -------------------------------------

TEST(ServingChaosAvailability, AnalyticHelperBasics)
{
    EXPECT_DOUBLE_EQ(analyticEngineAvailability(0.0, 60.0), 1.0);
    // MTBF 120 s (30/hour), MTTR 40 s: A = 120 / 160.
    EXPECT_NEAR(analyticEngineAvailability(30.0, 40.0), 0.75, 1e-12);
    // Short spans or rare failures are out of regime.
    EXPECT_FALSE(availabilityValidRegime(4, 10.0, 30.0, 40.0));
    EXPECT_FALSE(availabilityValidRegime(1, 300.0, 0.1, 40.0));
    EXPECT_TRUE(availabilityValidRegime(4, 600.0, 30.0, 20.0));
}

TEST(ServingChaosAvailability, SimulatedMatchesAnalyticInRegime)
{
    // 4 engines, MTBF 120 s, MTTR 20 s: A = 120/140 ~ 0.857. Average
    // the (deterministic) Monte-Carlo over a few schedule seeds and
    // demand the 5% agreement the chaos bench gates on.
    const double fail_per_hour = 30.0, repair_sec = 20.0;
    const double analytic =
        analyticEngineAvailability(fail_per_hour, repair_sec);

    double sum = 0.0;
    const std::uint64_t seeds[] = {101, 202, 303, 404, 505, 606};
    double span = 0.0;
    for (std::uint64_t seed : seeds) {
        ServingFleetConfig fleet = chaosFleet(4);
        fault::FaultRates rates;
        rates.rankFailPerHour = fail_per_hour;
        rates.rankRepairSec = repair_sec;
        fleet.chaos.schedule = fault::FaultSchedule::generate(
            servingFaultDomain(4), rates, 3600.0, seed);
        TrafficConfig traffic;
        traffic.process = ArrivalProcess::POISSON;
        traffic.requests = 800;
        traffic.requestsPerSecond = 2.0;
        traffic.genTokensMin = traffic.genTokensMax = 64;
        ServingMetrics m = simulateServing(fleet, traffic, seed);
        sum += m.availability;
        span = std::max(span, m.simSeconds);
    }
    const double measured = sum / 6.0;
    ASSERT_TRUE(availabilityValidRegime(4, span, fail_per_hour,
                                        repair_sec));
    EXPECT_NEAR(measured, analytic, 0.05 * analytic);
}

} // namespace
} // namespace dsv3::inference::serving
