/**
 * @file
 * Step-cost memo exactness and the DSV3_STEP_CACHE kill switch.
 *
 * The memo's correctness argument has two legs, each pinned here:
 *
 *  1. decodeStepBreakdown() consumes avgContextTokens only through
 *     llround(max(., 1)) — so keying the cache on the rounded context
 *     loses nothing, and a hit is bit-identical to recomputing. The
 *     fuzz sweeps (batch x context x commBandwidthScale x schedule)
 *     including degraded-link scales and the half = (batch+1)/2
 *     dual-microbatch boundary.
 *
 *  2. End-to-end: full ServingMetrics from cache-on and cache-off
 *     (DSV3_STEP_CACHE=0) runs of the same scenario agree bitwise,
 *     across healthy, chaotic, MTP, and KV-pressure scenarios and
 *     both schedules.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>

#include "fault/schedule.hh"
#include "inference/serving/simulator.hh"
#include "inference/serving/traffic.hh"
#include "model/config.hh"
#include "model/kv_cache.hh"

namespace dsv3::inference::serving {
namespace {

ServingFleetConfig
testFleet(Schedule schedule)
{
    ServingFleetConfig fleet;
    fleet.modelConfig = model::deepSeekV3();
    fleet.memBytesPerSec = 3.35e12;
    fleet.computeFlopsPerSec = 989e12;
    fleet.schedule = schedule;
    fleet.maxBatchPerEngine = 64;
    fleet.prefillServers = 4;
    fleet.prefillTokensPerSecPerServer = 1e6;
    return fleet;
}

void
expectBitIdentical(const DecodeStepBreakdown &a,
                   const DecodeStepBreakdown &b)
{
    // memcmp, not ==: bit-identity is the claim (NaN-proof, -0.0
    // distinct from +0.0).
    EXPECT_EQ(std::memcmp(&a, &b, sizeof a), 0)
        << a.totalSeconds << " vs " << b.totalSeconds;
}

TEST(StepCostMemo, ContextRoundingIsExact)
{
    // Grid: batches around the dual-microbatch half boundary, contexts
    // with fractional parts on both sides of .5, scales including the
    // degraded-link values a chaos schedule produces, both schedules.
    const std::size_t batches[] = {1, 2, 3, 63, 64, 65, 127, 128};
    const double contexts[] = {1.0,    1.49,  1.51,   128.0,
                               640.25, 640.5, 640.75, 4096.49,
                               4096.51, 16384.0};
    const double scales[] = {1.0, 0.9, 0.6, 0.25};
    const Schedule schedules[] = {Schedule::SEQUENTIAL,
                                  Schedule::DUAL_MICROBATCH};

    for (Schedule schedule : schedules) {
        const ServingFleetConfig fleet = testFleet(schedule);
        for (std::size_t batch : batches) {
            for (double ctx : contexts) {
                for (double scale : scales) {
                    const DecodeStepBreakdown direct =
                        decodeStepBreakdown(fleet, batch, ctx, scale);
                    // The memo's key derivation: any context with the
                    // same llround(max(., 1)) must produce the same
                    // breakdown, so a hit stored under the rounded
                    // key returns exactly what a miss would compute.
                    const double rounded = (double)std::llround(
                        std::max(ctx, 1.0));
                    expectBitIdentical(
                        direct, decodeStepBreakdown(fleet, batch,
                                                    rounded, scale));
                    // Determinism: recomputing is bit-stable, so
                    // "cached value == computed value" is well posed.
                    expectBitIdentical(
                        direct, decodeStepBreakdown(fleet, batch, ctx,
                                                    scale));
                }
            }
        }
    }
}

TEST(StepCostMemo, DualMicroBatchHalfBoundary)
{
    // half = (batch+1)/2: batch 63 and 64 share half = 32, batch 65
    // bumps to 33. The memo keys on batch (not half), which is safe
    // but must not be *wrong* either: equal-half batches may share a
    // breakdown, different-half batches must differ in their comm
    // floor (comm time scales with per-device batch).
    const ServingFleetConfig fleet =
        testFleet(Schedule::DUAL_MICROBATCH);
    const DecodeStepBreakdown b63 =
        decodeStepBreakdown(fleet, 63, 1024.0, 1.0);
    const DecodeStepBreakdown b64 =
        decodeStepBreakdown(fleet, 64, 1024.0, 1.0);
    const DecodeStepBreakdown b65 =
        decodeStepBreakdown(fleet, 65, 1024.0, 1.0);
    expectBitIdentical(b63, b64); // same half, same per-device load
    EXPECT_NE(b64.commSeconds, b65.commSeconds);
    EXPECT_GT(b65.totalSeconds, b64.totalSeconds);
}

void
expectSummaryBitEqual(const PercentileSummary &a,
                      const PercentileSummary &b)
{
    EXPECT_EQ(a.count, b.count);
    EXPECT_EQ(a.mean, b.mean);
    EXPECT_EQ(a.p50, b.p50);
    EXPECT_EQ(a.p95, b.p95);
    EXPECT_EQ(a.p99, b.p99);
    EXPECT_EQ(a.max, b.max);
}

/** Field-by-field exact equality (EXPECT_EQ on doubles is bitwise
 *  for non-NaN values; struct memcmp would read padding). */
void
expectMetricsBitEqual(const ServingMetrics &a, const ServingMetrics &b)
{
    EXPECT_EQ(a.requestsCompleted, b.requestsCompleted);
    EXPECT_EQ(a.requestsRejected, b.requestsRejected);
    EXPECT_EQ(a.decodeSteps, b.decodeSteps);
    EXPECT_EQ(a.decodeTokens, b.decodeTokens);
    EXPECT_EQ(a.preemptions, b.preemptions);
    EXPECT_EQ(a.simSeconds, b.simSeconds);
    EXPECT_EQ(a.requestsShed, b.requestsShed);
    EXPECT_EQ(a.requestsFailed, b.requestsFailed);
    EXPECT_EQ(a.requestsStranded, b.requestsStranded);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.failovers, b.failovers);
    EXPECT_EQ(a.engineDeaths, b.engineDeaths);
    EXPECT_EQ(a.engineDowntimeSeconds, b.engineDowntimeSeconds);
    EXPECT_EQ(a.availability, b.availability);
    EXPECT_EQ(a.minLiveEngines, b.minLiveEngines);
    expectSummaryBitEqual(a.ttft, b.ttft);
    expectSummaryBitEqual(a.tpot, b.tpot);
    expectSummaryBitEqual(a.goodput, b.goodput);
    EXPECT_EQ(a.tokensPerSecond, b.tokensPerSecond);
    EXPECT_EQ(a.sloGoodputTokensPerSecond,
              b.sloGoodputTokensPerSecond);
    EXPECT_EQ(a.kvTotalBlocks, b.kvTotalBlocks);
    EXPECT_EQ(a.kvHighWaterBlocks, b.kvHighWaterBlocks);
    for (std::size_t s = 0; s < kNumRequestStates; ++s) {
        EXPECT_EQ(a.stateSeconds[s], b.stateSeconds[s]) << s;
        expectSummaryBitEqual(a.statePerRequest[s],
                              b.statePerRequest[s]);
    }
    EXPECT_EQ(a.totalLatencySeconds, b.totalLatencySeconds);
    EXPECT_EQ(a.bottleneck, b.bottleneck);
}

/** Run one scenario with the step cache forced on, then forced off,
 *  and require bitwise-equal ServingMetrics. */
void
expectCacheTransparent(const ServingFleetConfig &fleet,
                       const TrafficConfig &traffic,
                       std::uint64_t seed)
{
    ASSERT_EQ(setenv("DSV3_STEP_CACHE", "1", 1), 0);
    const ServingMetrics on = simulateServing(fleet, traffic, seed);
    ASSERT_EQ(setenv("DSV3_STEP_CACHE", "0", 1), 0);
    const ServingMetrics off = simulateServing(fleet, traffic, seed);
    ASSERT_EQ(unsetenv("DSV3_STEP_CACHE"), 0);

    expectMetricsBitEqual(on, off);
}

TrafficConfig
poisson(std::size_t requests, double rate, std::size_t gen)
{
    TrafficConfig traffic;
    traffic.process = ArrivalProcess::POISSON;
    traffic.requests = requests;
    traffic.requestsPerSecond = rate;
    traffic.promptTokensMin = traffic.promptTokensMax = 128;
    traffic.genTokensMin = traffic.genTokensMax = gen;
    return traffic;
}

TEST(StepCacheKillSwitch, HealthyBothSchedules)
{
    for (Schedule s :
         {Schedule::SEQUENTIAL, Schedule::DUAL_MICROBATCH})
        expectCacheTransparent(testFleet(s), poisson(200, 8.0, 64),
                               13);
}

TEST(StepCacheKillSwitch, MtpAcceptanceChain)
{
    ServingFleetConfig fleet = testFleet(Schedule::DUAL_MICROBATCH);
    fleet.mtpEnabled = true;
    fleet.mtp.acceptanceRate = 0.8;
    expectCacheTransparent(fleet, poisson(200, 8.0, 64), 17);
}

TEST(StepCacheKillSwitch, KvPressurePreemption)
{
    ServingFleetConfig fleet = testFleet(Schedule::DUAL_MICROBATCH);
    fleet.kvBudgetBytesPerEngine =
        model::kvCacheBytesPerToken(model::deepSeekV3()) * 6.0 * 384.0;
    fleet.kvBlockTokens = 32;
    fleet.maxBatchPerEngine = 16;
    TrafficConfig closed;
    closed.process = ArrivalProcess::CLOSED_LOOP;
    closed.requests = 64;
    closed.closedLoopConcurrency = 16;
    closed.promptTokensMin = closed.promptTokensMax = 128;
    closed.genTokensMin = closed.genTokensMax = 256;
    expectCacheTransparent(fleet, closed, 7);
}

TEST(StepCacheKillSwitch, ChaosDegradedLinks)
{
    // Degraded links feed non-1.0 commBandwidthScale values into the
    // memo key; crashes void parked engine events. Both must stay
    // transparent to the cache.
    ServingFleetConfig fleet = testFleet(Schedule::DUAL_MICROBATCH);
    fault::FaultRates rates;
    rates.rankFailPerHour = 60.0;
    rates.rankRepairSec = 10.0;
    rates.linkDegradePerHour = 60.0;
    rates.degradeFactor = 0.6;
    rates.linkRepairSec = 10.0;
    fleet.decodeEngines = 4;
    fleet.chaos.schedule = fault::FaultSchedule::generate(
        servingFaultDomain(4), rates, 600.0, 23);
    expectCacheTransparent(fleet, poisson(400, 4.0, 32), 29);
}

} // namespace
} // namespace dsv3::inference::serving
