/**
 * @file
 * Tests for the LogFMT-nBit codec.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hh"
#include "numerics/error.hh"
#include "numerics/logfmt.hh"
#include "numerics/minifloat.hh"
#include "numerics/quantize.hh"

namespace dsv3::numerics {
namespace {

std::vector<double>
randomActivations(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<double> out(n);
    for (auto &x : out)
        x = rng.normal();
    return out;
}

TEST(LogFmt, ZeroTileStaysZero)
{
    LogFmtCodec codec(8);
    std::vector<double> zeros(128, 0.0);
    auto tile = codec.encode(zeros);
    auto back = codec.decode(tile);
    for (double v : back)
        EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(LogFmt, ZeroElementsWithinTilePreserved)
{
    LogFmtCodec codec(8);
    std::vector<double> data = {1.0, 0.0, -2.0, 0.0, 3.0};
    auto back = codec.decode(codec.encode(data));
    EXPECT_DOUBLE_EQ(back[1], 0.0);
    EXPECT_DOUBLE_EQ(back[3], 0.0);
}

TEST(LogFmt, MinAndMaxExact)
{
    // The tile's min and max magnitudes map onto the first and last
    // codes exactly (paper: min -> S.0..01, max -> S.1..11).
    LogFmtCodec codec(8);
    std::vector<double> data = {0.25, -7.5, 1.0, 3.0};
    auto back = codec.decode(codec.encode(data));
    EXPECT_NEAR(back[0], 0.25, 1e-12);
    EXPECT_NEAR(back[1], -7.5, 1e-12);
}

TEST(LogFmt, SignsPreserved)
{
    LogFmtCodec codec(8);
    auto data = randomActivations(128, 1);
    auto back = codec.decode(codec.encode(data));
    for (std::size_t i = 0; i < data.size(); ++i) {
        if (back[i] != 0.0) {
            EXPECT_EQ(std::signbit(back[i]), std::signbit(data[i]));
        }
    }
}

TEST(LogFmt, SingleMagnitudeTileIsExact)
{
    LogFmtCodec codec(8);
    std::vector<double> data = {2.5, -2.5, 2.5};
    auto back = codec.decode(codec.encode(data));
    EXPECT_NEAR(back[0], 2.5, 1e-12);
    EXPECT_NEAR(back[1], -2.5, 1e-12);
}

TEST(LogFmt, LogSpaceErrorBoundedByHalfStep)
{
    LogFmtCodec codec(8);
    auto data = randomActivations(128, 2);
    auto tile = codec.encode(data);
    auto back = codec.decode(tile);
    for (std::size_t i = 0; i < data.size(); ++i) {
        if (data[i] == 0.0 || back[i] == 0.0)
            continue;
        double log_err = std::fabs(std::log(std::fabs(back[i])) -
                                   std::log(std::fabs(data[i])));
        // Linear-space rounding may pick the other neighbor, but
        // never more than one full step away.
        EXPECT_LE(log_err, tile.step * 1.0 + 1e-9);
    }
}

TEST(LogFmt, DynamicRangeClamped)
{
    // A tile spanning more than 2^32 in magnitude clamps its min.
    LogFmtCodec codec(8);
    std::vector<double> data = {1e10, 1e-10};
    auto tile = codec.encode(data);
    double range = tile.step * (double)(codec.magnitudeCodes() - 1);
    EXPECT_LE(range, 32.0 * std::log(2.0) + 1e-9);
}

TEST(LogFmt, TinyValuesSaturateToSmallestCode)
{
    // Regression: values below the clamped dynamic range used to round
    // to code 0 and decode to exact zero. They must saturate to the
    // smallest representable magnitude (code 1 == min of the clamped
    // range, here 2^-32) with their sign intact, matching the E5-range
    // clamping semantics.
    LogFmtCodec codec(8);
    std::vector<double> data = {1.0, 1e-30, -1e-30};
    auto back = codec.decode(codec.encode(data));
    EXPECT_GT(back[1], 0.0);
    EXPECT_NEAR(back[1], std::pow(2.0, -32.0), 1e-21);
    EXPECT_LT(back[2], 0.0);
    EXPECT_DOUBLE_EQ(back[2], -back[1]);
}

TEST(LogFmt, TinyValuesSaturateInLogSpaceRoundingToo)
{
    LogFmtCodec codec(8, LogFmtRounding::LOG_SPACE);
    std::vector<double> data = {1.0, 1e-30};
    auto back = codec.decode(codec.encode(data));
    EXPECT_GT(back[1], 0.0);
    EXPECT_NEAR(back[1], std::pow(2.0, -32.0), 1e-21);
}

TEST(LogFmt, MoreBitsMoreAccuracy)
{
    auto data = randomActivations(4096, 3);
    double prev_err = 1e9;
    for (int bits : {6, 8, 10, 12}) {
        LogFmtCodec codec(bits);
        auto back = codec.roundTrip(data);
        double err = relL2Error(back, data);
        EXPECT_LT(err, prev_err) << bits << " bits";
        prev_err = err;
    }
}

TEST(LogFmt, Beats8BitFloatFormats)
{
    // The paper's core claim: at the same 8 bits, LogFMT achieves
    // better accuracy than E4M3 and E5M2 on activations.
    Rng rng(4);
    const std::size_t n = 1 << 14;
    Matrix m(1, n);
    m.fillActivationLike(rng, 1.0, 0.002, 20.0);

    LogFmtCodec codec(8);
    auto log_back = codec.roundTrip(m.data());
    double log_err = relL2Error(log_back, m.data());

    for (const FloatFormat *fmt : {&kE4M3, &kE5M2}) {
        Matrix deq = fakeQuantize(m, *fmt, Granularity::TILE_1X128);
        EXPECT_LT(log_err, relL2Error(deq.data(), m.data()))
            << "vs " << fmt->name;
    }
}

TEST(LogFmt, TenBitsNearBf16)
{
    // LogFMT-10 approaches BF16 quality (paper: "similar to the BF16
    // combine stage"): within ~3x in L2 error on activations.
    Rng rng(5);
    const std::size_t n = 1 << 14;
    Matrix m(1, n);
    m.fillActivationLike(rng, 1.0, 0.002, 20.0);
    LogFmtCodec codec(10);
    double log_err = relL2Error(codec.roundTrip(m.data()), m.data());
    Matrix bf16 = fakeQuantize(m, kBF16, Granularity::TILE_1X128);
    double bf16_err = relL2Error(bf16.data(), m.data());
    EXPECT_LT(log_err, bf16_err * 3.0);
}

TEST(LogFmt, LinearRoundingLessBiasedThanLogRounding)
{
    // Sec 3.2: rounding must happen in linear space for unbiased
    // quantization. The additive magnitude bias (what dot products
    // and gradients see in expectation) must be smaller for
    // linear-space rounding; log-space rounding inflates magnitudes.
    auto data = randomActivations(1 << 16, 6);
    LogFmtCodec linear(8, LogFmtRounding::LINEAR_SPACE);
    LogFmtCodec logsp(8, LogFmtRounding::LOG_SPACE);
    double bias_linear = std::fabs(
        additiveMagnitudeBias(linear.roundTrip(data), data));
    double bias_log = std::fabs(
        additiveMagnitudeBias(logsp.roundTrip(data), data));
    EXPECT_LT(bias_linear, bias_log);
}

TEST(LogFmt, CodesFitInBitBudget)
{
    LogFmtCodec codec(8);
    auto data = randomActivations(128, 7);
    auto tile = codec.encode(data);
    for (std::uint32_t code : tile.codes)
        EXPECT_LT(code, 256u);
}

TEST(LogFmt, RoundTripTilesIndependently)
{
    // Splitting into tiles must not change per-tile results.
    LogFmtCodec codec(8);
    auto data = randomActivations(256, 8);
    auto all = codec.roundTrip(data, 128);
    std::vector<double> first(data.begin(), data.begin() + 128);
    auto tile0 = codec.decode(codec.encode(first));
    for (std::size_t i = 0; i < 128; ++i)
        EXPECT_DOUBLE_EQ(all[i], tile0[i]);
}

TEST(LogFmtDeath, RejectsTooFewBits)
{
    EXPECT_DEATH(LogFmtCodec(2), "LogFMT");
}

/** Parameterized: bit-width sweep keeps error under format bound. */
class LogFmtBitsTest : public ::testing::TestWithParam<int>
{};

TEST_P(LogFmtBitsTest, RelErrorScalesWithStep)
{
    int bits = GetParam();
    auto data = randomActivations(1 << 13, 50 + bits);
    LogFmtCodec codec(bits);
    auto back = codec.roundTrip(data);
    // Worst-case relative error ~ exp(step/2) - 1 per element; allow
    // slack for values rounding to zero at the bottom of the range.
    double err = relL2Error(back, data);
    double expected_step =
        32.0 * std::log(2.0) / (double)((1 << (bits - 1)) - 2);
    EXPECT_LT(err, expected_step);
}

INSTANTIATE_TEST_SUITE_P(Bits, LogFmtBitsTest,
                         ::testing::Values(6, 8, 10, 12, 14));

} // namespace
} // namespace dsv3::numerics
