/**
 * @file
 * Bit-exactness fuzz suite for the runtime-dispatched SIMD kernel
 * tables (numerics/dispatch.hh).
 *
 * Every available SIMD table (AVX2, AVX-512, NEON) is compared entry
 * by entry against the scalar oracle table over adversarial inputs:
 * every minifloat format, ragged tail lengths covering n mod width in
 * {0..width-1} for every lane width in use, denormals, NaNs (payload
 * included), +-inf, signed zeros, rounding-tie midpoints, and raw
 * random bit patterns. Results must match bit for bit -- including
 * NaN payloads, tally counters, and reduction results -- because the
 * dispatcher may pick any table and the repo's golden suites assume
 * byte-identical output under every DSV3_KERNEL_DISPATCH choice.
 *
 * Tables the host cannot run are explicitly GTEST_SKIPped, never
 * silently passed. The pure DSV3_KERNEL_DISPATCH resolution logic
 * (detail::chooseIsa) is unit-tested directly.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "numerics/dispatch.hh"
#include "numerics/gemm.hh"
#include "numerics/logfmt.hh"
#include "numerics/kernels.hh"
#include "numerics/minifloat.hh"

namespace dsv3::numerics {
namespace {

const FloatFormat *const kAllFormats[] = {&kE4M3, &kE5M2, &kE5M6,
                                          &kBF16, &kFP16, &kFP22};

constexpr double kInf = std::numeric_limits<double>::infinity();

std::uint64_t
dbits(double x)
{
    return std::bit_cast<std::uint64_t>(x);
}

/**
 * Adversarial doubles: IEEE specials, denormals, exact powers of two,
 * values around minifloat rounding ties, and raw random bit patterns
 * (which cover NaN payloads and extreme exponents on their own).
 */
std::vector<double>
fuzzInputs(Rng &rng, std::size_t n)
{
    static const double kSpecials[] = {
        0.0,
        -0.0,
        kInf,
        -kInf,
        std::numeric_limits<double>::quiet_NaN(),
        -std::numeric_limits<double>::quiet_NaN(),
        std::bit_cast<double>(0x7ff800000000beefULL), // NaN payload
        std::numeric_limits<double>::denorm_min(),
        -std::numeric_limits<double>::denorm_min(),
        std::bit_cast<double>(0x000fffffffffffffULL), // max denormal
        std::numeric_limits<double>::min(),
        -std::numeric_limits<double>::min(),
        std::numeric_limits<double>::max(),
        -std::numeric_limits<double>::max(),
        1.0,
        -1.0,
        0.5,
        448.0,    // E4M3 maxFinite
        -448.0,
        57344.0,  // E5M2 maxFinite
        0x1p-6,
        0x1p-9,   // around FP8 subnormal ranges
        3.0 * 0x1p-10,
        0x1.8p-9, // halfway patterns
        0x1.1p0,
    };
    std::vector<double> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        switch (rng.nextBounded(4)) {
          case 0:
            out.push_back(
                kSpecials[rng.nextBounded(std::size(kSpecials))]);
            break;
          case 1: // raw bits: any double, NaNs/denormals included
            out.push_back(std::bit_cast<double>(rng.nextU64()));
            break;
          case 2: { // moderate-exponent normals (codec hot range)
            const double mag = std::ldexp(
                1.0 + rng.nextDouble(),
                (int)rng.nextBounded(41) - 20);
            out.push_back(rng.bernoulli(0.5) ? -mag : mag);
            break;
          }
          default: { // near-tie values on a coarse grid
            const double q = std::ldexp(
                (double)rng.nextBounded(1 << 10),
                (int)rng.nextBounded(8) - 11);
            const double eps =
                std::ldexp(1.0, -(int)rng.nextBounded(30) - 20);
            out.push_back((rng.bernoulli(0.5) ? -q : q) *
                          (1.0 + eps));
            break;
          }
        }
    }
    return out;
}

/** Lengths covering every n mod width for widths up to 8, plus big. */
const std::size_t kLengths[] = {0, 1,  2,  3,  4,  5,  6,  7,
                                8, 9,  15, 16, 17, 31, 64, 257};

class DispatchTest : public ::testing::TestWithParam<KernelIsa>
{
  protected:
    const KernelTable &oracle()
    {
        return *kernelTable(KernelIsa::SCALAR);
    }
};

/**
 * Bind the table under test, or GTEST_SKIP (never silently pass) when
 * this host can't run it. Must expand in the test body: GTEST_SKIP
 * returns from the enclosing void TestBody.
 */
#define DSV3_REQUIRE_ISA_TABLE(t)                                    \
    const KernelTable *t = kernelTable(GetParam());                  \
    if (!t)                                                          \
        GTEST_SKIP() << isaName(GetParam())                          \
                     << " not available on this host"

TEST_P(DispatchTest, CodecSpansMatchScalar)
{
    DSV3_REQUIRE_ISA_TABLE(t);
    Rng rng(0xc0dec);
    for (const FloatFormat *fmt : kAllFormats) {
        const FormatKernels &k = formatKernels(*fmt);
        SCOPED_TRACE(fmt->name);
        for (std::size_t n : kLengths) {
            const std::vector<double> in = fuzzInputs(rng, n);
            std::vector<std::uint32_t> code_s(n + 1, 0xabababab);
            std::vector<std::uint32_t> code_v(n + 1, 0xabababab);
            oracle().encodeSpan(k, in.data(), code_s.data(), n);
            t->encodeSpan(k, in.data(), code_v.data(), n);
            for (std::size_t i = 0; i <= n; ++i)
                ASSERT_EQ(code_v[i], code_s[i]) << "encode n=" << n
                                                << " i=" << i;

            std::vector<double> q_s(n + 1, -7.0), q_v(n + 1, -7.0);
            oracle().quantizeSpan(k, in.data(), q_s.data(), n);
            t->quantizeSpan(k, in.data(), q_v.data(), n);
            for (std::size_t i = 0; i <= n; ++i)
                ASSERT_EQ(dbits(q_v[i]), dbits(q_s[i]))
                    << "quantize n=" << n << " i=" << i
                    << " in=" << (i < n ? in[i] : 0.0);

            if (k.hasLut()) {
                std::vector<std::uint32_t> codes(n);
                for (auto &c : codes)
                    c = (std::uint32_t)rng.nextBounded(
                        k.decodeLut.size());
                std::vector<double> d_s(n + 1, -7.0), d_v(n + 1, -7.0);
                oracle().decodeLutSpan(k.decodeLut.data(),
                                       codes.data(), d_s.data(), n);
                t->decodeLutSpan(k.decodeLut.data(), codes.data(),
                                 d_v.data(), n);
                for (std::size_t i = 0; i <= n; ++i)
                    ASSERT_EQ(dbits(d_v[i]), dbits(d_s[i]))
                        << "decode n=" << n << " i=" << i;
            }
        }
    }
}

TEST_P(DispatchTest, EncodeScaledSpanMatchesScalarWithTallies)
{
    DSV3_REQUIRE_ISA_TABLE(t);
    Rng rng(0x5ca1ed);
    const double scales[] = {1.0, 0.25, 3.7e-3, 1.9e4, 1e200};
    for (const FloatFormat *fmt : kAllFormats) {
        const FormatKernels &k = formatKernels(*fmt);
        const std::uint32_t mag_mask =
            (1u << k.signShift) - 1;
        SCOPED_TRACE(fmt->name);
        for (std::size_t n : kLengths) {
            const std::vector<double> in = fuzzInputs(rng, n);
            const double s =
                scales[rng.nextBounded(std::size(scales))];
            std::vector<std::uint32_t> code_s(n + 1, 0xabababab);
            std::vector<std::uint32_t> code_v(n + 1, 0xabababab);
            std::uint64_t sat_s = 3, flush_s = 5;
            std::uint64_t sat_v = 3, flush_v = 5;
            oracle().encodeScaledSpan(k, in.data(), s, code_s.data(),
                                      n, k.maxFinite, mag_mask,
                                      &sat_s, &flush_s);
            t->encodeScaledSpan(k, in.data(), s, code_v.data(), n,
                                k.maxFinite, mag_mask, &sat_v,
                                &flush_v);
            for (std::size_t i = 0; i <= n; ++i)
                ASSERT_EQ(code_v[i], code_s[i])
                    << "n=" << n << " i=" << i << " s=" << s;
            ASSERT_EQ(sat_v, sat_s) << "n=" << n;
            ASSERT_EQ(flush_v, flush_s) << "n=" << n;

            // Tally-free variant must also match.
            oracle().encodeScaledSpan(k, in.data(), s, code_s.data(),
                                      n, k.maxFinite, mag_mask,
                                      nullptr, nullptr);
            t->encodeScaledSpan(k, in.data(), s, code_v.data(), n,
                                k.maxFinite, mag_mask, nullptr,
                                nullptr);
            for (std::size_t i = 0; i <= n; ++i)
                ASSERT_EQ(code_v[i], code_s[i])
                    << "no-tally n=" << n << " i=" << i;
        }
    }
}

TEST_P(DispatchTest, AbsMaxAndScaleSpanMatchScalar)
{
    DSV3_REQUIRE_ISA_TABLE(t);
    Rng rng(0xab5);
    const double inits[] = {0.0, 1.5, 1e300, 1e-300};
    for (std::size_t n : kLengths) {
        const std::vector<double> in = fuzzInputs(rng, n);
        for (double init : inits) {
            ASSERT_EQ(dbits(t->absMax(in.data(), n, init)),
                      dbits(oracle().absMax(in.data(), n, init)))
                << "absMax n=" << n << " init=" << init;
        }
        std::vector<double> a = in, b = in;
        const double s = rng.uniform(-3.0, 3.0);
        oracle().scaleSpan(a.data(), s, n);
        t->scaleSpan(b.data(), s, n);
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_EQ(dbits(b[i]), dbits(a[i]))
                << "scaleSpan n=" << n << " i=" << i;
    }
}

TEST_P(DispatchTest, LogFamilyMatchesScalar)
{
    DSV3_REQUIRE_ISA_TABLE(t);
    Rng rng(0x109f37);
    for (std::size_t n : kLengths) {
        const std::vector<double> in = fuzzInputs(rng, n);
        std::vector<double> logs_s(n + 1, -7.0), logs_v(n + 1, -7.0);
        double min_s = -1, max_s = -1, min_v = -1, max_v = -1;
        const bool any_s = oracle().logAbsStats(
            in.data(), logs_s.data(), n, &min_s, &max_s);
        const bool any_v = t->logAbsStats(in.data(), logs_v.data(), n,
                                          &min_v, &max_v);
        ASSERT_EQ(any_v, any_s) << "n=" << n;
        ASSERT_EQ(dbits(min_v), dbits(min_s)) << "n=" << n;
        ASSERT_EQ(dbits(max_v), dbits(max_s)) << "n=" << n;
        for (std::size_t i = 0; i <= n; ++i)
            ASSERT_EQ(dbits(logs_v[i]), dbits(logs_s[i]))
                << "logs n=" << n << " i=" << i
                << " in=" << (i < n ? in[i] : 0.0);
        if (!any_s || n == 0)
            continue;

        for (int bits : {4, 8, 10}) {
            const std::uint32_t sign_bit = 1u << (bits - 1);
            const std::uint32_t k_max = sign_bit - 1;
            const double step =
                k_max > 1 ? (max_s - min_s) / (double)(k_max - 1)
                          : 0.0;
            if (step == 0.0)
                continue; // degenerate tiles stay on the scalar path
            std::vector<double> mag_s(k_max + 1, -7.0);
            std::vector<double> mag_v(k_max + 1, -7.0);
            oracle().magTable(min_s, step, k_max, mag_s.data());
            t->magTable(min_s, step, k_max, mag_v.data());
            for (std::size_t j = 0; j <= k_max; ++j)
                ASSERT_EQ(dbits(mag_v[j]), dbits(mag_s[j]))
                    << "mag bits=" << bits << " j=" << j;

            std::vector<std::uint32_t> c_s(n, 0), c_v(n, 0);
            const std::uint64_t b_s = oracle().logfmtEncodeLog(
                in.data(), logs_s.data(), n, min_s, step, k_max,
                sign_bit, c_s.data());
            const std::uint64_t b_v = t->logfmtEncodeLog(
                in.data(), logs_s.data(), n, min_s, step, k_max,
                sign_bit, c_v.data());
            ASSERT_EQ(b_v, b_s) << "bits=" << bits << " n=" << n;
            for (std::size_t i = 0; i < n; ++i)
                ASSERT_EQ(c_v[i], c_s[i])
                    << "encodeLog bits=" << bits << " i=" << i;

            std::fill(c_s.begin(), c_s.end(), 0u);
            std::fill(c_v.begin(), c_v.end(), 0u);
            const std::uint64_t lb_s = oracle().logfmtEncodeLinear(
                in.data(), logs_s.data(), n, min_s, step, k_max,
                sign_bit, mag_s.data(), c_s.data());
            const std::uint64_t lb_v = t->logfmtEncodeLinear(
                in.data(), logs_s.data(), n, min_s, step, k_max,
                sign_bit, mag_s.data(), c_v.data());
            ASSERT_EQ(lb_v, lb_s) << "bits=" << bits << " n=" << n;
            for (std::size_t i = 0; i < n; ++i)
                ASSERT_EQ(c_v[i], c_s[i])
                    << "encodeLinear bits=" << bits << " i=" << i;

            std::vector<std::uint32_t> codes(n);
            for (auto &c : codes)
                c = (std::uint32_t)rng.nextBounded(k_max + 1) |
                    (rng.bernoulli(0.5) ? sign_bit : 0u);
            std::vector<double> d_s(n + 1, -7.0), d_v(n + 1, -7.0);
            oracle().logfmtDecode(codes.data(), n, sign_bit,
                                  mag_s.data(), d_s.data());
            t->logfmtDecode(codes.data(), n, sign_bit, mag_s.data(),
                            d_v.data());
            for (std::size_t i = 0; i <= n; ++i)
                ASSERT_EQ(dbits(d_v[i]), dbits(d_s[i]))
                    << "decode bits=" << bits << " i=" << i;
        }
    }
}

TEST_P(DispatchTest, GemmFamilyMatchesScalar)
{
    DSV3_REQUIRE_ISA_TABLE(t);
    Rng rng(0x93e);
    for (std::size_t n : kLengths) {
        // Finite operands: tile dots feed FP32/BF16 accumulation.
        std::vector<double> a(n), b(n);
        for (std::size_t i = 0; i < n; ++i) {
            a[i] = rng.normal();
            b[i] = rng.normal();
        }
        ASSERT_EQ(dbits(t->dotTile(a.data(), b.data(), n)),
                  dbits(oracle().dotTile(a.data(), b.data(), n)))
            << "dotTile n=" << n;
        const float f_v = t->dotTileF32(a.data(), b.data(), n);
        const float f_s = oracle().dotTileF32(a.data(), b.data(), n);
        ASSERT_EQ(std::bit_cast<std::uint32_t>(f_v),
                  std::bit_cast<std::uint32_t>(f_s))
            << "dotTileF32 n=" << n;

        std::vector<double> p_s(n + 1, -7.0), p_v(n + 1, -7.0);
        oracle().mulSpan(a.data(), b.data(), p_s.data(), n);
        t->mulSpan(a.data(), b.data(), p_v.data(), n);
        for (std::size_t i = 0; i <= n; ++i)
            ASSERT_EQ(dbits(p_v[i]), dbits(p_s[i]))
                << "mulSpan n=" << n << " i=" << i;

        const std::vector<double> wild = fuzzInputs(rng, n);
        ASSERT_EQ(t->absBitsMax(wild.data(), n),
                  oracle().absBitsMax(wild.data(), n))
            << "absBitsMax n=" << n;

        // truncSum under its exactness contract: products bounded so
        // every term is an exact multiple of quantum and the sum has
        // < 2^53 quanta.
        const double quantum = 0x1p-10;
        const double inv_quantum = 0x1p10;
        std::vector<double> prod(n);
        for (std::size_t i = 0; i < n; ++i)
            prod[i] = rng.uniform(-1000.0, 1000.0);
        ASSERT_EQ(dbits(t->truncSum(prod.data(), n, inv_quantum,
                                    quantum)),
                  dbits(oracle().truncSum(prod.data(), n, inv_quantum,
                                          quantum)))
            << "truncSum n=" << n;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Isa, DispatchTest,
    ::testing::Values(KernelIsa::NEON, KernelIsa::AVX2,
                      KernelIsa::AVX512),
    [](const ::testing::TestParamInfo<KernelIsa> &info) {
        return std::string(isaName(info.param));
    });

// ---------------------------------------------------------------
// DSV3_KERNEL_DISPATCH resolution logic (pure, unit-tested)
// ---------------------------------------------------------------

unsigned
maskOf(std::initializer_list<KernelIsa> isas)
{
    unsigned m = 0;
    for (KernelIsa isa : isas)
        m |= 1u << (int)isa;
    return m;
}

TEST(DispatchChoice, UnsetPicksBestAvailable)
{
    using detail::chooseIsa;
    EXPECT_EQ(chooseIsa(nullptr, maskOf({KernelIsa::AVX2,
                                         KernelIsa::AVX512}))
                  .isa,
              KernelIsa::AVX512);
    EXPECT_EQ(chooseIsa("", maskOf({KernelIsa::AVX2})).isa,
              KernelIsa::AVX2);
    EXPECT_EQ(chooseIsa(nullptr, maskOf({KernelIsa::NEON})).isa,
              KernelIsa::NEON);
    EXPECT_EQ(chooseIsa(nullptr, 0).isa, KernelIsa::SCALAR);
    EXPECT_FALSE(chooseIsa(nullptr, 0).forced);
}

TEST(DispatchChoice, ForcedIsaIsHonoredCaseInsensitively)
{
    using detail::chooseIsa;
    const unsigned mask =
        maskOf({KernelIsa::AVX2, KernelIsa::AVX512});
    const detail::DispatchChoice c = chooseIsa("avx2", mask);
    EXPECT_EQ(c.isa, KernelIsa::AVX2);
    EXPECT_TRUE(c.forced);
    EXPECT_FALSE(c.unsupported);
    EXPECT_FALSE(c.unknown);
    EXPECT_EQ(chooseIsa("AVX512", mask).isa, KernelIsa::AVX512);
    EXPECT_EQ(chooseIsa("Scalar", mask).isa, KernelIsa::SCALAR);
    EXPECT_TRUE(chooseIsa("Scalar", mask).forced);
}

TEST(DispatchChoice, UnsupportedIsaFallsBackToBestAvailable)
{
    using detail::chooseIsa;
    const detail::DispatchChoice c =
        detail::chooseIsa("neon", maskOf({KernelIsa::AVX2}));
    EXPECT_EQ(c.isa, KernelIsa::AVX2);
    EXPECT_FALSE(c.forced);
    EXPECT_TRUE(c.unsupported);
    EXPECT_FALSE(c.unknown);
}

TEST(DispatchChoice, UnknownNameFallsBackToBestAvailable)
{
    using detail::chooseIsa;
    const detail::DispatchChoice c =
        detail::chooseIsa("sse9", maskOf({KernelIsa::AVX2}));
    EXPECT_EQ(c.isa, KernelIsa::AVX2);
    EXPECT_FALSE(c.forced);
    EXPECT_FALSE(c.unsupported);
    EXPECT_TRUE(c.unknown);
}

TEST(Dispatch, ScalarTableAlwaysAvailableAndComplete)
{
    const KernelTable *s = kernelTable(KernelIsa::SCALAR);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->isa, KernelIsa::SCALAR);
    EXPECT_NE(s->encodeSpan, nullptr);
    EXPECT_NE(s->truncSum, nullptr);
}

TEST(Dispatch, ActiveTableIsAvailableAndGapFilled)
{
    const KernelTable &kt = kernels();
    EXPECT_EQ(kt.isa, activeIsa());
    EXPECT_NE(kernelTable(activeIsa()), nullptr);
    // Gap-filling: every entry of every available table is non-null.
    for (KernelIsa isa : {KernelIsa::SCALAR, KernelIsa::NEON,
                          KernelIsa::AVX2, KernelIsa::AVX512}) {
        const KernelTable *t = kernelTable(isa);
        if (!t)
            continue;
        EXPECT_NE(t->encodeSpan, nullptr) << isaName(isa);
        EXPECT_NE(t->quantizeSpan, nullptr) << isaName(isa);
        EXPECT_NE(t->decodeLutSpan, nullptr) << isaName(isa);
        EXPECT_NE(t->encodeScaledSpan, nullptr) << isaName(isa);
        EXPECT_NE(t->absMax, nullptr) << isaName(isa);
        EXPECT_NE(t->scaleSpan, nullptr) << isaName(isa);
        EXPECT_NE(t->logAbsStats, nullptr) << isaName(isa);
        EXPECT_NE(t->magTable, nullptr) << isaName(isa);
        EXPECT_NE(t->logfmtEncodeLog, nullptr) << isaName(isa);
        EXPECT_NE(t->logfmtEncodeLinear, nullptr) << isaName(isa);
        EXPECT_NE(t->logfmtDecode, nullptr) << isaName(isa);
        EXPECT_NE(t->dotTile, nullptr) << isaName(isa);
        EXPECT_NE(t->dotTileF32, nullptr) << isaName(isa);
        EXPECT_NE(t->mulSpan, nullptr) << isaName(isa);
        EXPECT_NE(t->absBitsMax, nullptr) << isaName(isa);
        EXPECT_NE(t->truncSum, nullptr) << isaName(isa);
    }
}

/**
 * End-to-end: the full quantized-GEMM and LogFMT pipelines produce
 * byte-identical results under every available dispatch table, at
 * thread widths 1, 2, and the hardware default. This is the
 * product-level version of the per-entry fuzz above -- it exercises
 * the real call sites (quantize passes, packed panels, magnitude
 * cache, FP22 group sums) rather than the kernel entries in
 * isolation.
 */
TEST(Dispatch, PipelinesBitIdenticalAcrossTablesAndWidths)
{
    struct WidthGuard
    {
        explicit WidthGuard(std::size_t w) { setParallelForWidth(w); }
        ~WidthGuard() { setParallelForWidth(0); }
    };

    Rng rng(77);
    Matrix a(33, 160), b(160, 21);
    a.fillActivationLike(rng, 1.0, 0.02, 50.0);
    b.fillNormal(rng);
    std::vector<double> tile(300);
    for (auto &x : tile)
        x = rng.normal();
    tile[7] = 0.0;
    tile[13] = -0.0;

    GemmOptions opt;
    opt.fmt = &kE4M3;
    opt.tileK = 64;

    for (AccumMode mode : {AccumMode::FP32, AccumMode::FP22}) {
        opt.accum = mode;
        opt.fineGrained = true;
        Matrix want_q = gemmQuantizedRef(a, b, opt);
        Matrix want_bf16 = gemmBf16Ref(a, b);
        LogFmtCodec codec(8, LogFmtRounding::LINEAR_SPACE);
        const std::vector<double> want_rt = codec.roundTrip(tile);

        for (KernelIsa isa : {KernelIsa::SCALAR, KernelIsa::NEON,
                              KernelIsa::AVX2, KernelIsa::AVX512}) {
            const KernelTable *t = kernelTable(isa);
            if (!t)
                continue; // per-entry suites GTEST_SKIP loudly
            ScopedKernelOverride o(*t);
            for (std::size_t w : {std::size_t{1}, std::size_t{2},
                                  std::size_t{0}}) {
                WidthGuard guard(w);
                SCOPED_TRACE(std::string(isaName(isa)) + " w=" +
                             std::to_string(w));
                Matrix got = gemmQuantized(a, b, opt);
                ASSERT_EQ(got.rows(), want_q.rows());
                for (std::size_t r = 0; r < got.rows(); ++r)
                    for (std::size_t c = 0; c < got.cols(); ++c)
                        ASSERT_EQ(dbits(got.at(r, c)),
                                  dbits(want_q.at(r, c)))
                            << "gemmQuantized (" << r << "," << c
                            << ")";
                Matrix gotb = gemmBf16(a, b);
                for (std::size_t r = 0; r < gotb.rows(); ++r)
                    for (std::size_t c = 0; c < gotb.cols(); ++c)
                        ASSERT_EQ(dbits(gotb.at(r, c)),
                                  dbits(want_bf16.at(r, c)))
                            << "gemmBf16 (" << r << "," << c << ")";
                const std::vector<double> rt = codec.roundTrip(tile);
                for (std::size_t i = 0; i < rt.size(); ++i)
                    ASSERT_EQ(dbits(rt[i]), dbits(want_rt[i]))
                        << "roundTrip i=" << i;
            }
        }
    }
}

TEST(Dispatch, ScopedOverrideSwapsActiveTable)
{
    const KernelIsa before = activeIsa();
    {
        ScopedKernelOverride o(*kernelTable(KernelIsa::SCALAR));
        EXPECT_EQ(activeIsa(), KernelIsa::SCALAR);
        EXPECT_EQ(kernels().isa, KernelIsa::SCALAR);
    }
    EXPECT_EQ(activeIsa(), before);
}

} // namespace
} // namespace dsv3::numerics
