/**
 * @file
 * Tests for the reference and quantized GEMM pipelines.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "numerics/error.hh"
#include "numerics/gemm.hh"

namespace dsv3::numerics {
namespace {

Matrix
randomMatrix(std::size_t r, std::size_t c, std::uint64_t seed,
             double stddev = 1.0)
{
    Rng rng(seed);
    Matrix m(r, c);
    m.fillNormal(rng, 0.0, stddev);
    return m;
}

TEST(GemmRef, IdentityPreserves)
{
    Matrix a = randomMatrix(5, 5, 1);
    Matrix eye(5, 5);
    for (std::size_t i = 0; i < 5; ++i)
        eye.at(i, i) = 1.0;
    Matrix c = gemmRef(a, eye);
    for (std::size_t i = 0; i < 5; ++i)
        for (std::size_t j = 0; j < 5; ++j)
            EXPECT_DOUBLE_EQ(c.at(i, j), a.at(i, j));
}

TEST(GemmRef, KnownSmallProduct)
{
    Matrix a(2, 3), b(3, 2);
    double av[] = {1, 2, 3, 4, 5, 6};
    double bv[] = {7, 8, 9, 10, 11, 12};
    a.data().assign(av, av + 6);
    b.data().assign(bv, bv + 6);
    Matrix c = gemmRef(a, b);
    EXPECT_DOUBLE_EQ(c.at(0, 0), 58.0);
    EXPECT_DOUBLE_EQ(c.at(0, 1), 64.0);
    EXPECT_DOUBLE_EQ(c.at(1, 0), 139.0);
    EXPECT_DOUBLE_EQ(c.at(1, 1), 154.0);
}

TEST(GemmBf16, CloseToReference)
{
    Matrix a = randomMatrix(16, 256, 2);
    Matrix b = randomMatrix(256, 16, 3, 0.05);
    double err = relL2Error(gemmBf16(a, b), gemmRef(a, b));
    EXPECT_GT(err, 0.0);
    EXPECT_LT(err, 0.01); // BF16 has ~2-3 decimal digits
}

TEST(GemmQuantized, FineGrainedFp22TracksIdealClosely)
{
    Matrix a = randomMatrix(8, 512, 4);
    Matrix b = randomMatrix(512, 8, 5, 0.05);
    GemmOptions ideal;
    ideal.accum = AccumMode::FP32;
    GemmOptions hopper;
    hopper.accum = AccumMode::FP22;
    double acc_err = relL2Error(gemmQuantized(a, b, hopper),
                                gemmQuantized(a, b, ideal));
    EXPECT_LT(acc_err, 1e-3);
}

TEST(GemmQuantized, ErrorSmallerThanNaiveHopper)
{
    Matrix a = randomMatrix(8, 8192, 6);
    Matrix b = randomMatrix(8192, 8, 7, 0.05);
    Matrix ref = gemmRef(a, b);

    GemmOptions deepgemm; // fine-grained + FP22 + promotion
    GemmOptions naive;
    naive.fineGrained = false;
    naive.accum = AccumMode::FP22_NO_PROMOTION;

    // Isolate accumulation: compare against FP32 accumulation of the
    // same quantization choice.
    GemmOptions fine_fp32 = deepgemm;
    fine_fp32.accum = AccumMode::FP32;
    GemmOptions coarse_fp32 = naive;
    coarse_fp32.accum = AccumMode::FP32;

    double deepgemm_acc_err =
        relL2Error(gemmQuantized(a, b, deepgemm),
                   gemmQuantized(a, b, fine_fp32));
    double naive_acc_err =
        relL2Error(gemmQuantized(a, b, naive),
                   gemmQuantized(a, b, coarse_fp32));
    EXPECT_LT(deepgemm_acc_err * 5.0, naive_acc_err);
}

TEST(GemmQuantized, Fp8QuantizationErrorInExpectedBand)
{
    Matrix a = randomMatrix(16, 1024, 8);
    Matrix b = randomMatrix(1024, 16, 9, 0.05);
    GemmOptions opt;
    double err = relL2Error(gemmQuantized(a, b, opt), gemmRef(a, b));
    // E4M3 carries ~2 significant digits; a length-1024 dot product
    // averages the elementwise noise down into the low percents.
    EXPECT_GT(err, 1e-4);
    EXPECT_LT(err, 0.1);
}

TEST(GemmQuantized, NonMultipleKHandled)
{
    Matrix a = randomMatrix(4, 200, 10);
    Matrix b = randomMatrix(200, 4, 11, 0.05);
    GemmOptions opt;
    Matrix c = gemmQuantized(a, b, opt);
    double err = relL2Error(c, gemmRef(a, b));
    EXPECT_LT(err, 0.1);
}

TEST(GemmQuantized, FineGrainedScalesContainOutliers)
{
    Rng rng(12);
    Matrix a(8, 512);
    a.fillActivationLike(rng, 1.0, 0.02, 200.0);
    Matrix b = randomMatrix(512, 8, 13, 0.05);
    Matrix ref = gemmRef(a, b);

    GemmOptions fine;
    GemmOptions coarse;
    coarse.fineGrained = false;
    double fine_err = relL2Error(gemmQuantized(a, b, fine), ref);
    double coarse_err = relL2Error(gemmQuantized(a, b, coarse), ref);
    EXPECT_LT(fine_err, coarse_err);
}

TEST(GemmQuantized, WiderFormatCloserToRef)
{
    Matrix a = randomMatrix(8, 256, 14);
    Matrix b = randomMatrix(256, 8, 15, 0.05);
    Matrix ref = gemmRef(a, b);
    GemmOptions fp8;
    GemmOptions e5m6;
    e5m6.fmt = &kE5M6;
    EXPECT_LT(relL2Error(gemmQuantized(a, b, e5m6), ref),
              relL2Error(gemmQuantized(a, b, fp8), ref));
}

TEST(GemmQuantizedDeath, NoPromotionRejectsFineGrained)
{
    Matrix a = randomMatrix(2, 128, 16);
    Matrix b = randomMatrix(128, 2, 17);
    GemmOptions opt;
    opt.fineGrained = true;
    opt.accum = AccumMode::FP22_NO_PROMOTION;
    EXPECT_DEATH((void)gemmQuantized(a, b, opt), "fine-grained");
}

} // namespace
} // namespace dsv3::numerics
