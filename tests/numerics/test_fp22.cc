/**
 * @file
 * Tests for the Hopper FP22 accumulation-path emulation.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hh"
#include "numerics/fp22.hh"

namespace dsv3::numerics {
namespace {

TEST(AlignedGroupSum, ExactForSmallAlignedValues)
{
    // Values sharing an exponent and few mantissa bits sum exactly.
    std::vector<double> products = {1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(alignedGroupSum(products), 10.0);
}

TEST(AlignedGroupSum, EmptyAndZeros)
{
    EXPECT_DOUBLE_EQ(alignedGroupSum({}), 0.0);
    std::vector<double> zeros = {0.0, 0.0};
    EXPECT_DOUBLE_EQ(alignedGroupSum(zeros), 0.0);
}

TEST(AlignedGroupSum, SmallAddendTruncatedAgainstLargeMax)
{
    // With a max product of ~2^13 scale, an addend below one retained
    // fraction quantum vanishes entirely.
    std::vector<double> products = {8192.0, 0.4};
    // quantum = 2^(14-13) = 2; 0.4 truncates to 0.
    EXPECT_DOUBLE_EQ(alignedGroupSum(products, 13), 8192.0);
}

TEST(AlignedGroupSum, TruncationIsTowardZero)
{
    // Negative small values also truncate toward zero (not -inf).
    std::vector<double> products = {8192.0, -0.4};
    EXPECT_DOUBLE_EQ(alignedGroupSum(products, 13), 8192.0);
}

TEST(AlignedGroupSum, MoreFractionBitsKeepMore)
{
    std::vector<double> products = {8192.0, 0.4};
    // With 16 fraction bits the quantum is 0.25: 0.4 -> 0.25.
    EXPECT_DOUBLE_EQ(alignedGroupSum(products, 16), 8192.25);
}

TEST(AlignedGroupSum, ErrorBoundedByGroupQuantum)
{
    Rng rng(3);
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<double> products(32);
        double exact = 0.0;
        double max_mag = 0.0;
        for (auto &p : products) {
            p = rng.normal();
            exact += p;
            max_mag = std::max(max_mag, std::fabs(p));
        }
        double approx = alignedGroupSum(products);
        int e;
        std::frexp(max_mag, &e);
        double quantum = std::ldexp(1.0, e - 13);
        // Each of the 32 addends truncates by < quantum.
        EXPECT_LE(std::fabs(approx - exact), 32.0 * quantum);
    }
}

TEST(Fp22Register, StoresTruncatedValues)
{
    Fp22Register reg;
    reg.add(1.0);
    EXPECT_DOUBLE_EQ(reg.value(), 1.0);
    // Adding a tiny value is lost to FP22 truncation.
    reg.add(1e-8);
    EXPECT_DOUBLE_EQ(reg.value(), 1.0);
}

TEST(Fp22Register, ResetClears)
{
    Fp22Register reg;
    reg.add(5.0);
    reg.reset();
    EXPECT_DOUBLE_EQ(reg.value(), 0.0);
}

TEST(TensorCoreAccumulator, Fp32ModeIsExactSum)
{
    TensorCoreAccumulator acc(AccumMode::FP32);
    double exact = 0.0;
    Rng rng(4);
    for (int i = 0; i < 1000; ++i) {
        double p = rng.normal();
        exact += p;
        acc.addProduct(p);
    }
    EXPECT_DOUBLE_EQ(acc.result(), exact);
}

TEST(TensorCoreAccumulator, PromotionReducesLongKError)
{
    // The promotion path must beat the raw FP22 path on long
    // reductions; this is the paper's Sec 3.1 argument.
    Rng rng(5);
    const int k = 32768;
    std::vector<double> products(k);
    double exact = 0.0;
    for (auto &p : products) {
        p = rng.normal() * 0.01;
        exact += p;
    }
    TensorCoreAccumulator promoted(AccumMode::FP22);
    TensorCoreAccumulator raw(AccumMode::FP22_NO_PROMOTION);
    for (double p : products) {
        promoted.addProduct(p);
        raw.addProduct(p);
    }
    double err_promoted = std::fabs(promoted.result() - exact);
    double err_raw = std::fabs(raw.result() - exact);
    EXPECT_LT(err_promoted, err_raw);
}

TEST(TensorCoreAccumulator, FlushHandlesPartialGroups)
{
    // 33 products = one full group of 32 plus a trailing single.
    TensorCoreAccumulator acc(AccumMode::FP22);
    for (int i = 0; i < 33; ++i)
        acc.addProduct(1.0);
    EXPECT_DOUBLE_EQ(acc.result(), 33.0);
}

TEST(TensorCoreAccumulator, ResetReusable)
{
    TensorCoreAccumulator acc(AccumMode::FP22);
    acc.addProduct(2.0);
    acc.reset();
    acc.addProduct(3.0);
    EXPECT_DOUBLE_EQ(acc.result(), 3.0);
}

TEST(TensorCoreAccumulator, ModeNames)
{
    EXPECT_STREQ(accumModeName(AccumMode::FP32), "FP32");
    EXPECT_STREQ(accumModeName(AccumMode::FP22), "FP22+promote");
}

/** Accumulation error growth: sweep K, raw FP22 error must grow. */
class Fp22ErrorGrowthTest : public ::testing::TestWithParam<int>
{};

TEST_P(Fp22ErrorGrowthTest, RawErrorExceedsPromotedAtScale)
{
    const int k = GetParam();
    Rng rng(100 + k);
    TensorCoreAccumulator promoted(AccumMode::FP22);
    TensorCoreAccumulator raw(AccumMode::FP22_NO_PROMOTION);
    double exact = 0.0;
    for (int i = 0; i < k; ++i) {
        double p = rng.normal() * 0.02;
        exact += p;
        promoted.addProduct(p);
        raw.addProduct(p);
    }
    // Promoted error stays near FP32 rounding; raw drifts.
    double scale = std::max(std::fabs(exact), 1.0);
    EXPECT_LT(std::fabs(promoted.result() - exact) / scale, 2e-3)
        << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Sweep, Fp22ErrorGrowthTest,
                         ::testing::Values(4096, 16384, 65536));

} // namespace
} // namespace dsv3::numerics
