/**
 * @file
 * Golden bit-exactness tests for the fast numerics kernels
 * (kernels.hh): the LUT/bit-classification codec, the span APIs, the
 * batched QuantizedMatrix pipeline, and the blocked + parallel GEMMs
 * must be byte-identical to the scalar reference implementations for
 * every format, granularity, accumulation mode, shape, and thread
 * width. A separate suite pins down ties-to-even rounding on every
 * code midpoint of every 8-bit format (the encode/quantize rounding
 * unification).
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "numerics/gemm.hh"
#include "numerics/fastmath.hh"
#include "numerics/kernels.hh"
#include "numerics/logfmt.hh"
#include "numerics/matrix.hh"
#include "numerics/minifloat.hh"
#include "numerics/quantize.hh"

namespace dsv3::numerics {
namespace {

const FloatFormat *const kAllFormats[] = {&kE4M3, &kE5M2, &kE5M6,
                                          &kBF16, &kFP16, &kFP22};

std::uint64_t
dbits(double x)
{
    return std::bit_cast<std::uint64_t>(x);
}

/** Bit equality, except any NaN matches any NaN. */
bool
sameBits(double a, double b)
{
    return dbits(a) == dbits(b) || (std::isnan(a) && std::isnan(b));
}

void
expectBitEqual(const Matrix &got, const Matrix &want, const char *what)
{
    ASSERT_EQ(got.rows(), want.rows()) << what;
    ASSERT_EQ(got.cols(), want.cols()) << what;
    for (std::size_t r = 0; r < got.rows(); ++r) {
        for (std::size_t c = 0; c < got.cols(); ++c) {
            ASSERT_TRUE(sameBits(got.at(r, c), want.at(r, c)))
                << what << " differs at (" << r << ", " << c
                << "): " << got.at(r, c) << " vs " << want.at(r, c);
        }
    }
}

/** Restores the parallelFor width cap on scope exit. */
struct WidthGuard
{
    explicit WidthGuard(std::size_t w) { setParallelForWidth(w); }
    ~WidthGuard() { setParallelForWidth(0); }
};

/** Check the fast codec against the reference for one input. */
void
checkOneInput(const FloatFormat &fmt, const FormatKernels &k, double x)
{
    ASSERT_EQ(encodeFast(k, x), encodeRef(fmt, x))
        << fmt.name << " encode(" << x << ")";
    ASSERT_TRUE(sameBits(quantizeFast(k, x), quantizeRef(fmt, x)))
        << fmt.name << " quantize(" << x << ")";
    ASSERT_TRUE(sameBits(quantizeTruncateFast(k, x),
                         quantizeTruncateRef(fmt, x)))
        << fmt.name << " quantizeTruncate(" << x << ")";
}

TEST(Kernels, DecodeMatchesReferenceForEveryCode)
{
    for (const FloatFormat *fmt : kAllFormats) {
        const FormatKernels &k = formatKernels(*fmt);
        EXPECT_EQ(k.hasLut(), fmt->totalBits() <= kMaxLutBits)
            << fmt->name;
        // Formats wider than the LUT limit are sampled with a stride
        // that is coprime to the code count, so every exponent binade
        // and mantissa parity is still visited.
        const std::uint32_t stride = k.hasLut() ? 1 : 97;
        for (std::uint32_t code = 0; code < fmt->codeCount();
             code += stride) {
            ASSERT_TRUE(sameBits(decodeFast(k, code),
                                 decodeRef(*fmt, code)))
                << fmt->name << " code " << code;
        }
    }
}

TEST(Kernels, EncodeMatchesReferenceOnGridAndSpecials)
{
    for (const FloatFormat *fmt : kAllFormats) {
        const FormatKernels &k = formatKernels(*fmt);
        const std::uint32_t stride =
            fmt->totalBits() <= kMaxLutBits ? 1 : 97;
        for (std::uint32_t code = 0; code < fmt->codeCount();
             code += stride) {
            const double v = decodeRef(*fmt, code);
            if (!std::isfinite(v)) {
                checkOneInput(*fmt, k, v);
                continue;
            }
            // The representable value itself, its neighbourhood, and
            // the tie midpoint with the next-larger magnitude.
            checkOneInput(*fmt, k, v);
            checkOneInput(*fmt, k, std::nextafter(v, 1e308));
            checkOneInput(*fmt, k, std::nextafter(v, -1e308));
            const double up = decodeRef(*fmt, code + 1);
            if (code + 1 < fmt->codeCount() && std::isfinite(up) &&
                std::signbit(up) == std::signbit(v)) {
                const double mid = (v + up) / 2.0; // exact
                checkOneInput(*fmt, k, mid);
                checkOneInput(*fmt, k, std::nextafter(mid, 1e308));
                checkOneInput(*fmt, k, std::nextafter(mid, -1e308));
            }
        }
    }
}

TEST(Kernels, EncodeMatchesReferenceOnSpecialValues)
{
    const double inf = std::numeric_limits<double>::infinity();
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const double dmin = std::numeric_limits<double>::denorm_min();
    for (const FloatFormat *fmt : kAllFormats) {
        const FormatKernels &k = formatKernels(*fmt);
        const double probes[] = {0.0,
                                 -0.0,
                                 inf,
                                 -inf,
                                 nan,
                                 -nan,
                                 dmin,
                                 -dmin,
                                 dmin * 4096,
                                 std::numeric_limits<double>::min(),
                                 std::numeric_limits<double>::max(),
                                 fmt->maxFinite(),
                                 -fmt->maxFinite(),
                                 std::nextafter(fmt->maxFinite(), inf),
                                 fmt->minSubnormal(),
                                 fmt->minSubnormal() / 2,
                                 fmt->minNormal(),
                                 1.0,
                                 -1.0};
        for (double x : probes)
            checkOneInput(*fmt, k, x);
        // +-0 must keep the sign bit.
        EXPECT_EQ(encodeFast(k, -0.0) >> k.signShift, 1u) << fmt->name;
        EXPECT_EQ(encodeFast(k, 0.0), 0u) << fmt->name;
    }
}

TEST(Kernels, EncodeMatchesReferenceOnRandomBitPatterns)
{
    // Raw 64-bit patterns cover NaN payloads, both infinities, double
    // subnormals, and wild exponents; scaled uniforms concentrate on
    // each format's interesting binades.
    Rng rng(0xfeedbeef);
    for (const FloatFormat *fmt : kAllFormats) {
        const FormatKernels &k = formatKernels(*fmt);
        for (int i = 0; i < 20000; ++i) {
            checkOneInput(*fmt, k,
                          std::bit_cast<double>(rng.nextU64()));
        }
        for (int i = 0; i < 40000; ++i) {
            const double u =
                (double)(rng.nextU64() >> 11) * 0x1p-52 - 1.0;
            const int e = (int)rng.nextBounded(80) - 40;
            checkOneInput(*fmt, k, std::ldexp(u, e));
        }
    }
}

// Satellite (b): encode() and quantize() both round ties to even.
// Every midpoint between adjacent representable values of every 8-bit
// format must land on the even-mantissa neighbour, through both the
// value path and the code path.
TEST(Kernels, TiesRoundToEvenOnEveryCodeMidpoint)
{
    const FloatFormat *const byte_formats[] = {&kE4M3, &kE5M2};
    for (const FloatFormat *fmt : byte_formats) {
        for (std::uint32_t code = 0; code + 1 < fmt->codeCount();
             ++code) {
            const double lo = decode(*fmt, code);
            const double hi = decode(*fmt, code + 1);
            if (!std::isfinite(lo) || !std::isfinite(hi))
                continue;
            if (std::signbit(lo) != std::signbit(hi) ||
                std::fabs(hi) < std::fabs(lo)) {
                continue; // not an adjacent same-sign magnitude pair
            }
            // Adjacent minifloat values: sum and half are exact.
            const double mid = (lo + hi) / 2.0;
            if (mid == lo || mid == hi)
                continue; // degenerate (0 <-> minSubnormal underflow)
            // The mantissa LSB is the code LSB, so exactly one of the
            // pair is even -- that is the one ties must pick.
            const std::uint32_t even =
                (code & 1u) == 0u ? code : code + 1;
            EXPECT_EQ(encode(*fmt, mid), even)
                << fmt->name << " encode midpoint of codes " << code
                << "/" << code + 1;
            EXPECT_EQ(dbits(quantize(*fmt, mid)),
                      dbits(decode(*fmt, even)))
                << fmt->name << " quantize midpoint of codes " << code
                << "/" << code + 1;
        }
    }
}

TEST(Kernels, SpanApisMatchScalarReference)
{
    Rng rng(42);
    std::vector<double> in(1537); // odd length, not a tile multiple
    for (double &x : in) {
        const double u = (double)(rng.nextU64() >> 11) * 0x1p-52 - 1.0;
        x = std::ldexp(u, (int)rng.nextBounded(40) - 20);
    }
    in[0] = 0.0;
    in[1] = -0.0;
    in[2] = std::numeric_limits<double>::infinity();
    in[3] = std::numeric_limits<double>::quiet_NaN();

    for (const FloatFormat *fmt : kAllFormats) {
        std::vector<std::uint32_t> codes(in.size());
        encodeSpan(*fmt, in, codes.data());
        std::vector<double> quant(in.size());
        quantizeSpan(*fmt, in, quant.data());
        std::vector<double> dec(in.size());
        decodeSpan(*fmt, codes, dec.data());
        for (std::size_t i = 0; i < in.size(); ++i) {
            ASSERT_EQ(codes[i], encodeRef(*fmt, in[i]))
                << fmt->name << " i=" << i;
            ASSERT_TRUE(sameBits(quant[i], quantizeRef(*fmt, in[i])))
                << fmt->name << " i=" << i;
            ASSERT_TRUE(sameBits(dec[i], decodeRef(*fmt, codes[i])))
                << fmt->name << " i=" << i;
        }
    }
}

// Reference QuantizedMatrix: the original per-element two-pass
// algorithm, built on the reference codec.
struct RefQuantized
{
    std::vector<std::uint32_t> codes;
    std::vector<double> scales;
};

RefQuantized
refQuantize(const Matrix &m, const FloatFormat &fmt, Granularity g,
            std::size_t tile)
{
    const std::size_t rows = m.rows(), cols = m.cols();
    const std::size_t tiles_x = (cols + tile - 1) / tile;
    const std::size_t tiles_y = (rows + tile - 1) / tile;
    std::size_t scale_cols = 1, nscales = 1;
    if (g == Granularity::TILE_1X128) {
        scale_cols = tiles_x;
        nscales = rows * tiles_x;
    } else if (g == Granularity::BLOCK_128X128) {
        scale_cols = tiles_x;
        nscales = tiles_y * tiles_x;
    }
    auto scale_index = [&](std::size_t r, std::size_t c) -> std::size_t {
        switch (g) {
          case Granularity::PER_TENSOR:
            return 0;
          case Granularity::TILE_1X128:
            return r * scale_cols + c / tile;
          case Granularity::BLOCK_128X128:
            return (r / tile) * scale_cols + c / tile;
        }
        return 0;
    };

    RefQuantized out;
    std::vector<double> amax(nscales, 0.0);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < cols; ++c) {
            std::size_t idx = scale_index(r, c);
            amax[idx] = std::max(amax[idx], std::fabs(m.at(r, c)));
        }
    out.scales.resize(nscales);
    for (std::size_t i = 0; i < nscales; ++i)
        out.scales[i] = amax[i] > 0.0 ? amax[i] / fmt.maxFinite() : 1.0;

    out.codes.resize(rows * cols);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < cols; ++c) {
            double s = out.scales[scale_index(r, c)];
            out.codes[r * cols + c] = encodeRef(fmt, m.at(r, c) / s);
        }
    return out;
}

TEST(Kernels, QuantizedMatrixMatchesReference)
{
    Rng rng(7);
    const Granularity grans[] = {Granularity::PER_TENSOR,
                                 Granularity::TILE_1X128,
                                 Granularity::BLOCK_128X128};
    const struct
    {
        std::size_t rows, cols, tile;
    } shapes[] = {{1, 1, 128},   {13, 37, 128}, {5, 128, 128},
                  {129, 131, 128}, {64, 256, 16}, {128, 128, 128}};
    for (const FloatFormat *fmt : {&kE4M3, &kE5M2, &kBF16}) {
        for (auto g : grans) {
            for (const auto &sh : shapes) {
                Matrix m(sh.rows, sh.cols);
                m.fillActivationLike(rng, 1.0, 0.02, 100.0);
                m.at(0, 0) = 0.0; // exercise the all-zero scale guard

                QuantizedMatrix q(m, *fmt, g, sh.tile);
                RefQuantized ref = refQuantize(m, *fmt, g, sh.tile);
                ASSERT_TRUE(std::equal(q.codes().begin(),
                                       q.codes().end(),
                                       ref.codes.begin(),
                                       ref.codes.end()))
                    << fmt->name << " " << granularityName(g) << " "
                    << sh.rows << "x" << sh.cols;
                ASSERT_EQ(q.scaleGrid().size(), ref.scales.size());
                for (std::size_t i = 0; i < ref.scales.size(); ++i)
                    ASSERT_EQ(dbits(q.scaleGrid()[i]),
                              dbits(ref.scales[i]))
                        << fmt->name << " scale " << i;

                // dequantize() must equal element-wise value(), which
                // in turn is rawValue * scale of the reference codes.
                Matrix deq = q.dequantize();
                for (std::size_t r = 0; r < sh.rows; ++r)
                    for (std::size_t c = 0; c < sh.cols; ++c)
                        ASSERT_TRUE(
                            sameBits(deq.at(r, c), q.value(r, c)))
                            << fmt->name << " (" << r << "," << c
                            << ")";
            }
        }
    }
}

TEST(Kernels, QuantizedMatrixDecodeRawIntoMatchesRawValue)
{
    Rng rng(11);
    Matrix m(37, 130);
    m.fillNormal(rng);
    QuantizedMatrix q(m, kE4M3, Granularity::TILE_1X128, 128);
    std::vector<double> raw(m.rows() * m.cols());
    q.decodeRawInto(raw.data());
    for (std::size_t r = 0; r < m.rows(); ++r)
        for (std::size_t c = 0; c < m.cols(); ++c)
            ASSERT_TRUE(sameBits(raw[r * m.cols() + c],
                                 q.rawValue(r, c)));
}

TEST(Kernels, GemmQuantizedMatchesScalarReferenceAtAnyWidth)
{
    Rng rng(3);
    const struct
    {
        std::size_t m, k, n;
    } shapes[] = {{8, 128, 8}, {7, 130, 9}, {1, 32, 5}, {17, 257, 3}};
    const std::size_t widths[] = {1, 2, 0};

    for (const auto &sh : shapes) {
        Matrix a(sh.m, sh.k), b(sh.k, sh.n);
        a.fillActivationLike(rng, 1.0, 0.02, 100.0);
        b.fillNormal(rng);

        for (const FloatFormat *fmt : {&kE4M3, &kE5M2}) {
            GemmOptions opt;
            opt.fmt = fmt;
            for (AccumMode mode : {AccumMode::FP32, AccumMode::FP22,
                                   AccumMode::FP22_NO_PROMOTION}) {
                opt.accum = mode;
                opt.fineGrained =
                    mode != AccumMode::FP22_NO_PROMOTION;
                Matrix want = gemmQuantizedRef(a, b, opt);
                for (std::size_t w : widths) {
                    WidthGuard guard(w);
                    Matrix got = gemmQuantized(a, b, opt);
                    expectBitEqual(got, want, accumModeName(mode));
                }
            }
        }
    }
}

TEST(Kernels, GemmBf16AndRefMatchScalarReferenceAtAnyWidth)
{
    Rng rng(5);
    Matrix a(13, 67), b(67, 19);
    a.fillNormal(rng);
    b.fillActivationLike(rng, 1.0, 0.02, 50.0);
    Matrix want_bf16 = gemmBf16Ref(a, b);
    Matrix want_ref = gemmRefScalar(a, b);
    for (std::size_t w : {std::size_t{1}, std::size_t{2},
                          std::size_t{0}}) {
        WidthGuard guard(w);
        expectBitEqual(gemmBf16(a, b), want_bf16, "gemmBf16");
        expectBitEqual(gemmRef(a, b), want_ref, "gemmRef");
    }
}

// Reference LogFMT encoder: the original per-element implementation
// (including the per-element candidate decode in linear rounding).
// Uses the same pinned log/exp as the product code -- the reference
// pins the OPERATION ORDER, while fastmath pins the transcendental
// result bits, and both are needed for byte equality.
LogFmtTile
refLogFmtEncode(std::span<const double> values, int bits,
                LogFmtRounding rounding, double max_range_ln)
{
    LogFmtTile tile;
    tile.bits = bits;
    tile.codes.resize(values.size(), 0);

    double min_log = 0.0, max_log = 0.0;
    bool any = false;
    for (double x : values) {
        if (x == 0.0 || !std::isfinite(x))
            continue;
        double l = fastmath::logAbsPinned(x);
        if (!any) {
            min_log = max_log = l;
            any = true;
        } else {
            min_log = std::min(min_log, l);
            max_log = std::max(max_log, l);
        }
    }
    if (!any)
        return tile;
    min_log = std::max(min_log, max_log - max_range_ln);

    const std::uint32_t k_max = (1u << (bits - 1)) - 1;
    const double step = k_max > 1
        ? (max_log - min_log) / (double)(k_max - 1) : 0.0;
    tile.minLog = min_log;
    tile.step = step;
    auto decode_mag = [&](std::uint32_t k) {
        return k == 0 ? 0.0
                      : fastmath::expPinned(min_log +
                                            step * (double)(k - 1));
    };

    const std::uint32_t sign_bit = 1u << (bits - 1);
    for (std::size_t i = 0; i < values.size(); ++i) {
        double x = values[i];
        if (x == 0.0 || !std::isfinite(x))
            continue;
        std::uint32_t sign = x < 0.0 ? sign_bit : 0u;
        double mag = std::fabs(x);
        double l = fastmath::logAbsPinned(x);
        std::uint32_t k;
        if (step == 0.0) {
            k = 1;
        } else {
            double k_real = (l - min_log) / step + 1.0;
            if (rounding == LogFmtRounding::LOG_SPACE) {
                long rounded = std::lround(k_real);
                k = (std::uint32_t)std::clamp<long>(rounded, 1,
                                                    (long)k_max);
            } else {
                double fl = std::floor(k_real);
                long lo = std::clamp<long>((long)fl, 1, (long)k_max);
                long hi = std::clamp<long>(lo + 1, 1, (long)k_max);
                double v_lo = decode_mag((std::uint32_t)lo);
                double v_hi = decode_mag((std::uint32_t)hi);
                k = std::fabs(mag - v_lo) <= std::fabs(v_hi - mag)
                    ? (std::uint32_t)lo : (std::uint32_t)hi;
            }
        }
        tile.codes[i] = sign | k;
    }
    return tile;
}

TEST(Kernels, LogFmtMatchesScalarReference)
{
    Rng rng(9);
    std::vector<double> values(1000);
    for (std::size_t i = 0; i < values.size(); ++i) {
        const double u = (double)(rng.nextU64() >> 11) * 0x1p-52 - 1.0;
        values[i] = std::ldexp(u, (int)rng.nextBounded(120) - 60);
    }
    // Zeros, non-finites, and a constant run (step == 0 inside its
    // own tile would need the whole tile constant; covered below).
    values[0] = 0.0;
    values[17] = -0.0;
    values[33] = std::numeric_limits<double>::infinity();
    values[51] = std::numeric_limits<double>::quiet_NaN();

    const double range_ln = 32.0 * std::log(2.0);
    for (int bits : {3, 4, 8, 10, 16}) {
        for (LogFmtRounding r : {LogFmtRounding::LINEAR_SPACE,
                                 LogFmtRounding::LOG_SPACE}) {
            LogFmtCodec codec(bits, r);
            for (std::size_t lo = 0; lo < values.size(); lo += 128) {
                std::size_t hi = std::min(values.size(), lo + 128);
                std::span<const double> tile_in(values.data() + lo,
                                                hi - lo);
                LogFmtTile got = codec.encode(tile_in);
                LogFmtTile want =
                    refLogFmtEncode(tile_in, bits, r, range_ln);
                ASSERT_EQ(got.codes, want.codes)
                    << "bits=" << bits << " tile@" << lo;
                ASSERT_EQ(dbits(got.minLog), dbits(want.minLog));
                ASSERT_EQ(dbits(got.step), dbits(want.step));

                // Decode: every element reconstructed from the same
                // exp() expression the reference uses.
                std::vector<double> dec = codec.decode(got);
                const std::uint32_t sign_bit = 1u << (bits - 1);
                for (std::size_t i = 0; i < dec.size(); ++i) {
                    std::uint32_t k = want.codes[i] & (sign_bit - 1);
                    double mag = k == 0
                        ? 0.0
                        : fastmath::expPinned(
                              want.minLog +
                              want.step * (double)(k - 1));
                    double expect = (want.codes[i] & sign_bit)
                        ? -mag : mag;
                    ASSERT_TRUE(sameBits(dec[i], expect))
                        << "bits=" << bits << " i=" << i;
                }
            }
        }
    }

    // Degenerate tiles: all zero, and single repeated magnitude.
    LogFmtCodec codec(8);
    std::vector<double> zeros(64, 0.0);
    LogFmtTile zt = codec.encode(zeros);
    for (std::uint32_t c : zt.codes)
        EXPECT_EQ(c, 0u);
    std::vector<double> constant(64, -3.25);
    LogFmtTile ct = codec.encode(constant);
    std::vector<double> cdec = codec.decode(ct);
    for (double v : cdec)
        EXPECT_TRUE(sameBits(v, -3.25));
}

TEST(Kernels, LogFmtRoundTripMatchesTiledEncodeDecode)
{
    Rng rng(13);
    std::vector<double> values(777); // odd tail tile
    for (double &x : values) {
        const double u = (double)(rng.nextU64() >> 11) * 0x1p-52 - 1.0;
        x = std::ldexp(u, (int)rng.nextBounded(30) - 15);
    }
    LogFmtCodec codec(8);
    std::vector<double> rt = codec.roundTrip(values, 128);
    ASSERT_EQ(rt.size(), values.size());
    for (std::size_t lo = 0; lo < values.size(); lo += 128) {
        std::size_t hi = std::min(values.size(), lo + 128);
        LogFmtTile tile = codec.encode(
            std::span<const double>(values.data() + lo, hi - lo));
        std::vector<double> dec = codec.decode(tile);
        for (std::size_t i = 0; i < dec.size(); ++i)
            ASSERT_TRUE(sameBits(rt[lo + i], dec[i]));
    }
}

} // namespace
} // namespace dsv3::numerics
