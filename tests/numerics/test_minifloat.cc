/**
 * @file
 * Tests for the minifloat codec: format constants match the FP8/BF16
 * specs, every code round-trips, quantization is idempotent and
 * correctly rounded, and saturation/overflow behave per format.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>

#include "common/rng.hh"
#include "numerics/minifloat.hh"

namespace dsv3::numerics {
namespace {

TEST(FloatFormat, E4M3Constants)
{
    EXPECT_EQ(kE4M3.totalBits(), 8);
    EXPECT_DOUBLE_EQ(kE4M3.maxFinite(), 448.0);
    EXPECT_DOUBLE_EQ(kE4M3.minNormal(), 1.0 / 64.0);      // 2^-6
    EXPECT_DOUBLE_EQ(kE4M3.minSubnormal(), 1.0 / 512.0);  // 2^-9
}

TEST(FloatFormat, E5M2Constants)
{
    EXPECT_EQ(kE5M2.totalBits(), 8);
    EXPECT_DOUBLE_EQ(kE5M2.maxFinite(), 57344.0);
    EXPECT_DOUBLE_EQ(kE5M2.minNormal(), std::ldexp(1.0, -14));
    EXPECT_DOUBLE_EQ(kE5M2.minSubnormal(), std::ldexp(1.0, -16));
}

TEST(FloatFormat, Bf16MatchesFloatRange)
{
    EXPECT_EQ(kBF16.totalBits(), 16);
    // BF16 max = 0x7F7F = 3.3895e38.
    EXPECT_NEAR(kBF16.maxFinite(), 3.3895313892515355e38, 1e24);
}

TEST(FloatFormat, Fp22IsE8M13)
{
    EXPECT_EQ(kFP22.totalBits(), 22);
    EXPECT_EQ(kFP22.ebits, 8);
    EXPECT_EQ(kFP22.mbits, 13);
}

TEST(Minifloat, DecodeEncodeRoundTripsEveryE4M3Code)
{
    std::set<double> values;
    for (std::uint32_t code = 0; code < kE4M3.codeCount(); ++code) {
        double v = decode(kE4M3, code);
        if (std::isnan(v))
            continue;
        values.insert(v);
        std::uint32_t back = encode(kE4M3, v);
        EXPECT_DOUBLE_EQ(decode(kE4M3, back), v) << "code " << code;
    }
    // E4M3: 256 codes - 2 NaN = 254, minus one duplicate (+-0) = 253.
    EXPECT_EQ(values.size(), 253u);
}

TEST(Minifloat, DecodeEncodeRoundTripsEveryE5M2Code)
{
    for (std::uint32_t code = 0; code < kE5M2.codeCount(); ++code) {
        double v = decode(kE5M2, code);
        if (std::isnan(v))
            continue;
        std::uint32_t back = encode(kE5M2, v);
        EXPECT_DOUBLE_EQ(decode(kE5M2, back), v) << "code " << code;
    }
}

TEST(Minifloat, QuantizeIsIdempotent)
{
    Rng rng(5);
    for (int i = 0; i < 2000; ++i) {
        double x = rng.normal(0.0, 10.0);
        double q = quantize(kE4M3, x);
        EXPECT_DOUBLE_EQ(quantize(kE4M3, q), q);
    }
}

TEST(Minifloat, QuantizeRoundsToNearest)
{
    // 1.0 and its E4M3 neighbor 1.125: midpoint 1.0625 ties to even
    // mantissa (1.0); anything above goes up.
    EXPECT_DOUBLE_EQ(quantize(kE4M3, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(quantize(kE4M3, 1.0624), 1.0);
    EXPECT_DOUBLE_EQ(quantize(kE4M3, 1.0625), 1.0); // tie -> even
    EXPECT_DOUBLE_EQ(quantize(kE4M3, 1.07), 1.125);
    // 1.125 to 1.25 midpoint 1.1875 ties to even (1.25, mantissa 010).
    EXPECT_DOUBLE_EQ(quantize(kE4M3, 1.1875), 1.25);
}

TEST(Minifloat, QuantizeErrorBoundedByHalfUlp)
{
    Rng rng(6);
    for (int i = 0; i < 5000; ++i) {
        double x = rng.uniform(-400.0, 400.0);
        double q = quantize(kE4M3, x);
        int e;
        std::frexp(std::fabs(x), &e);
        double ulp = std::ldexp(1.0, std::max(e - 1, -6) - kE4M3.mbits);
        EXPECT_LE(std::fabs(q - x), ulp * 0.5 + 1e-15)
            << "x=" << x << " q=" << q;
    }
}

TEST(Minifloat, FiniteOnlySaturates)
{
    EXPECT_DOUBLE_EQ(quantize(kE4M3, 1e6), 448.0);
    EXPECT_DOUBLE_EQ(quantize(kE4M3, -1e6), -448.0);
    EXPECT_DOUBLE_EQ(
        quantize(kE4M3, std::numeric_limits<double>::infinity()),
        448.0);
}

TEST(Minifloat, IeeeOverflowsToInfinity)
{
    EXPECT_TRUE(std::isinf(quantize(kE5M2, 1e9)));
    EXPECT_TRUE(std::isinf(quantize(kE5M2, -1e9)));
    EXPECT_DOUBLE_EQ(quantize(kE5M2, 57344.0), 57344.0);
}

TEST(Minifloat, SubnormalsRepresentable)
{
    double sub = kE4M3.minSubnormal();
    EXPECT_DOUBLE_EQ(quantize(kE4M3, sub), sub);
    EXPECT_DOUBLE_EQ(quantize(kE4M3, 3.0 * sub), 3.0 * sub);
    // Below half the smallest subnormal rounds to zero.
    EXPECT_DOUBLE_EQ(quantize(kE4M3, sub * 0.49), 0.0);
}

TEST(Minifloat, SignPreserved)
{
    Rng rng(8);
    for (int i = 0; i < 1000; ++i) {
        double x = rng.normal(0.0, 100.0);
        double q = quantize(kE5M2, x);
        if (q != 0.0) {
            EXPECT_EQ(std::signbit(q), std::signbit(x));
        }
    }
}

TEST(Minifloat, NanHandling)
{
    double nan = std::numeric_limits<double>::quiet_NaN();
    EXPECT_TRUE(std::isnan(quantize(kE4M3, nan)));
    EXPECT_TRUE(isNan(kE4M3, encode(kE4M3, nan)));
    EXPECT_TRUE(isNan(kE5M2, encode(kE5M2, nan)));
}

TEST(Minifloat, InfEncoding)
{
    double inf = std::numeric_limits<double>::infinity();
    std::uint32_t code = encode(kE5M2, inf);
    EXPECT_TRUE(isInf(kE5M2, code));
    EXPECT_DOUBLE_EQ(decode(kE5M2, code), inf);
}

TEST(Minifloat, QuantizeTruncateNeverIncreasesMagnitude)
{
    Rng rng(9);
    for (int i = 0; i < 5000; ++i) {
        double x = rng.normal(0.0, 50.0);
        double q = quantizeTruncate(kFP22, x);
        EXPECT_LE(std::fabs(q), std::fabs(x) + 1e-300);
        if (q != 0.0) {
            EXPECT_EQ(std::signbit(q), std::signbit(x));
        }
    }
}

TEST(Minifloat, TruncateVsNearest)
{
    // 1 + 0.6*ulp: nearest rounds up, truncate rounds down.
    double ulp = ulpOfOne(kE4M3);
    double x = 1.0 + 0.6 * ulp;
    EXPECT_DOUBLE_EQ(quantize(kE4M3, x), 1.0 + ulp);
    EXPECT_DOUBLE_EQ(quantizeTruncate(kE4M3, x), 1.0);
}

TEST(Minifloat, UlpOfOne)
{
    EXPECT_DOUBLE_EQ(ulpOfOne(kE4M3), 0.125);
    EXPECT_DOUBLE_EQ(ulpOfOne(kE5M2), 0.25);
    EXPECT_DOUBLE_EQ(ulpOfOne(kFP22), std::ldexp(1.0, -13));
}

/** Round-trip property across all supported formats. */
class MinifloatFormatTest
    : public ::testing::TestWithParam<const FloatFormat *>
{};

TEST_P(MinifloatFormatTest, QuantizeWithinFormatBounds)
{
    const FloatFormat &fmt = *GetParam();
    Rng rng(77);
    for (int i = 0; i < 3000; ++i) {
        double x = rng.normal(0.0, fmt.maxFinite() / 8.0);
        double q = quantize(fmt, x);
        EXPECT_LE(std::fabs(q), fmt.maxFinite());
    }
}

TEST_P(MinifloatFormatTest, EncodeDecodeConsistent)
{
    const FloatFormat &fmt = *GetParam();
    Rng rng(78);
    for (int i = 0; i < 3000; ++i) {
        double x = rng.normal(0.0, 1.0);
        double q = quantize(fmt, x);
        EXPECT_DOUBLE_EQ(decode(fmt, encode(fmt, x)), q);
    }
}

TEST_P(MinifloatFormatTest, MonotoneOnSamples)
{
    const FloatFormat &fmt = *GetParam();
    // Quantization must be monotone: x <= y => q(x) <= q(y).
    double prev = quantize(fmt, -fmt.maxFinite() * 2.0);
    for (double x = -fmt.maxFinite() * 2.0; x < fmt.maxFinite() * 2.0;
         x += fmt.maxFinite() / 64.0) {
        double q = quantize(fmt, x);
        EXPECT_GE(q, prev) << "x=" << x;
        prev = q;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllFormats, MinifloatFormatTest,
    ::testing::Values(&kE4M3, &kE5M2, &kE5M6, &kBF16, &kFP16, &kFP22),
    [](const ::testing::TestParamInfo<const FloatFormat *> &info) {
        return info.param->name;
    });

} // namespace
} // namespace dsv3::numerics
