/**
 * @file
 * Tests for the error metrics.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "numerics/error.hh"

namespace dsv3::numerics {
namespace {

TEST(ErrorMetrics, ZeroErrorWhenIdentical)
{
    std::vector<double> v = {1.0, -2.0, 3.0};
    EXPECT_DOUBLE_EQ(relL2Error(v, v), 0.0);
    EXPECT_DOUBLE_EQ(rmse(v, v), 0.0);
    EXPECT_DOUBLE_EQ(maxRelError(v, v), 0.0);
    EXPECT_DOUBLE_EQ(meanSignedError(v, v), 0.0);
    EXPECT_TRUE(std::isinf(snrDb(v, v)));
}

TEST(ErrorMetrics, RelL2KnownValue)
{
    std::vector<double> ref = {3.0, 4.0};      // ||ref|| = 5
    std::vector<double> approx = {3.0, 4.5};   // err = 0.5
    EXPECT_DOUBLE_EQ(relL2Error(approx, ref), 0.1);
}

TEST(ErrorMetrics, RmseKnownValue)
{
    std::vector<double> ref = {0.0, 0.0};
    std::vector<double> approx = {3.0, 4.0};
    EXPECT_DOUBLE_EQ(rmse(approx, ref), std::sqrt(12.5));
}

TEST(ErrorMetrics, MaxRelErrorPicksWorst)
{
    std::vector<double> ref = {10.0, 1.0};
    std::vector<double> approx = {10.1, 1.5};
    EXPECT_DOUBLE_EQ(maxRelError(approx, ref), 0.5);
}

TEST(ErrorMetrics, SnrDbKnownValue)
{
    std::vector<double> ref = {10.0};
    std::vector<double> approx = {11.0}; // err^2/ref^2 = 0.01
    EXPECT_NEAR(snrDb(approx, ref), 20.0, 1e-9);
}

TEST(ErrorMetrics, MeanSignedErrorDetectsBias)
{
    std::vector<double> ref = {1.0, 2.0, 3.0};
    std::vector<double> low = {0.9, 1.9, 2.9};
    EXPECT_NEAR(meanSignedError(low, ref), -0.1, 1e-12);
}

TEST(ErrorMetrics, RelMagnitudeBiasIgnoresSign)
{
    std::vector<double> ref = {1.0, -1.0};
    std::vector<double> approx = {1.1, -1.1};
    EXPECT_NEAR(relMagnitudeBias(approx, ref), 0.1, 1e-12);
}

TEST(ErrorMetrics, RelMagnitudeBiasSkipsZeros)
{
    std::vector<double> ref = {0.0, 2.0};
    std::vector<double> approx = {5.0, 2.2};
    EXPECT_NEAR(relMagnitudeBias(approx, ref), 0.1, 1e-12);
}

TEST(ErrorMetrics, ZeroReferenceInfiniteRelError)
{
    std::vector<double> ref = {0.0};
    std::vector<double> approx = {1.0};
    EXPECT_TRUE(std::isinf(relL2Error(approx, ref)));
}

TEST(ErrorMetricsDeath, SizeMismatchRejected)
{
    std::vector<double> a = {1.0};
    std::vector<double> b = {1.0, 2.0};
    EXPECT_DEATH((void)relL2Error(a, b), "");
}

} // namespace
} // namespace dsv3::numerics
