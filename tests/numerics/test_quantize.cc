/**
 * @file
 * Tests for fine-grained tile/block quantization.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "numerics/error.hh"
#include "numerics/quantize.hh"

namespace dsv3::numerics {
namespace {

Matrix
randomMatrix(std::size_t r, std::size_t c, std::uint64_t seed,
             double stddev = 1.0)
{
    Rng rng(seed);
    Matrix m(r, c);
    m.fillNormal(rng, 0.0, stddev);
    return m;
}

TEST(Quantize, ScaleCountPerGranularity)
{
    Matrix m = randomMatrix(256, 512, 1);
    QuantizedMatrix per_tensor(m, kE4M3, Granularity::PER_TENSOR);
    QuantizedMatrix tiles(m, kE4M3, Granularity::TILE_1X128);
    QuantizedMatrix blocks(m, kE4M3, Granularity::BLOCK_128X128);
    EXPECT_EQ(per_tensor.scaleCount(), 1u);
    EXPECT_EQ(tiles.scaleCount(), 256u * 4u);  // 512/128 tiles per row
    EXPECT_EQ(blocks.scaleCount(), 2u * 4u);   // 256/128 x 512/128
}

TEST(Quantize, DequantizedShapeMatches)
{
    Matrix m = randomMatrix(10, 300, 2);
    Matrix deq =
        fakeQuantize(m, kE4M3, Granularity::TILE_1X128);
    EXPECT_EQ(deq.rows(), 10u);
    EXPECT_EQ(deq.cols(), 300u);
}

TEST(Quantize, TileAmaxMapsToMaxCode)
{
    // The largest |element| of each tile must be reproduced exactly
    // (it maps to the format's maxFinite).
    Matrix m = randomMatrix(4, 256, 3);
    QuantizedMatrix q(m, kE4M3, Granularity::TILE_1X128);
    for (std::size_t r = 0; r < m.rows(); ++r) {
        for (std::size_t tile = 0; tile < 2; ++tile) {
            double amax = 0.0;
            std::size_t arg = 0;
            for (std::size_t c = tile * 128; c < (tile + 1) * 128;
                 ++c) {
                if (std::fabs(m.at(r, c)) > amax) {
                    amax = std::fabs(m.at(r, c));
                    arg = c;
                }
            }
            EXPECT_NEAR(std::fabs(q.value(r, arg)), amax,
                        amax * 1e-12);
        }
    }
}

TEST(Quantize, FineGrainedBeatsPerTensorWithOutliers)
{
    Rng rng(4);
    Matrix m(64, 512);
    m.fillActivationLike(rng, 1.0, 0.01, 100.0);
    Matrix fine = fakeQuantize(m, kE4M3, Granularity::TILE_1X128);
    Matrix coarse = fakeQuantize(m, kE4M3, Granularity::PER_TENSOR);
    // Compare on RMSE: outliers inflate the per-tensor scale and wipe
    // out small values everywhere; tiles contain the damage.
    EXPECT_LT(rmse(fine.data(), m.data()),
              rmse(coarse.data(), m.data()));
}

TEST(Quantize, UniformDataNearlyEqualAcrossGranularities)
{
    // Without outliers the granularities should be close.
    Matrix m = randomMatrix(32, 256, 5);
    Matrix fine = fakeQuantize(m, kE4M3, Granularity::TILE_1X128);
    Matrix coarse = fakeQuantize(m, kE4M3, Granularity::PER_TENSOR);
    double fine_err = relL2Error(fine, m);
    double coarse_err = relL2Error(coarse, m);
    EXPECT_LT(fine_err, coarse_err * 1.05);
    EXPECT_GT(fine_err, coarse_err * 0.3);
}

TEST(Quantize, RelativeErrorBoundedByFormatUlp)
{
    Matrix m = randomMatrix(16, 256, 6);
    Matrix deq = fakeQuantize(m, kE4M3, Granularity::TILE_1X128);
    // Tile-scaled E4M3: relative error <= ~ulp (subnormal tails of a
    // tile can be worse; normal-range values obey half-ulp).
    double err = maxRelError(deq.data(), m.data(), 1e-3);
    EXPECT_LT(err, 0.20);
}

TEST(Quantize, ZeroMatrixSurvives)
{
    Matrix m(8, 128, 0.0);
    Matrix deq = fakeQuantize(m, kE4M3, Granularity::TILE_1X128);
    for (double v : deq.data())
        EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Quantize, NonMultipleTileWidth)
{
    // 200 columns = one full tile + a 72-wide remainder tile.
    Matrix m = randomMatrix(4, 200, 7);
    QuantizedMatrix q(m, kE4M3, Granularity::TILE_1X128);
    EXPECT_EQ(q.scaleCount(), 4u * 2u);
    Matrix deq = q.dequantize();
    EXPECT_LT(relL2Error(deq, m), 0.05);
}

TEST(Quantize, CodeBytesMatchElementCount)
{
    Matrix m = randomMatrix(8, 128, 8);
    QuantizedMatrix q8(m, kE4M3, Granularity::TILE_1X128);
    EXPECT_EQ(q8.codeBytes(), 8u * 128u); // 1 byte per FP8 code
    QuantizedMatrix q16(m, kBF16, Granularity::TILE_1X128);
    EXPECT_EQ(q16.codeBytes(), 8u * 128u * 2u);
}

TEST(Quantize, BlockScaleSharedWithinBlock)
{
    Matrix m = randomMatrix(256, 256, 9);
    QuantizedMatrix q(m, kE4M3, Granularity::BLOCK_128X128);
    EXPECT_DOUBLE_EQ(q.scale(0, 0), q.scale(127, 127));
    EXPECT_DOUBLE_EQ(q.scale(0, 128), q.scale(100, 255));
    // Different blocks, (almost surely) different scales.
    EXPECT_NE(q.scale(0, 0), q.scale(128, 128));
}

TEST(Quantize, GranularityNames)
{
    EXPECT_STREQ(granularityName(Granularity::PER_TENSOR),
                 "per-tensor");
    EXPECT_STREQ(granularityName(Granularity::TILE_1X128),
                 "tile 1x128");
    EXPECT_STREQ(granularityName(Granularity::BLOCK_128X128),
                 "block 128x128");
}

/** Property sweep: round-trip error shrinks with wider formats. */
class QuantizeFormatOrderTest
    : public ::testing::TestWithParam<std::size_t>
{};

TEST_P(QuantizeFormatOrderTest, WiderFormatsAreMoreAccurate)
{
    Matrix m = randomMatrix(8, 256, 100 + GetParam());
    double e4m3 =
        relL2Error(fakeQuantize(m, kE4M3, Granularity::TILE_1X128), m);
    double e5m6 =
        relL2Error(fakeQuantize(m, kE5M6, Granularity::TILE_1X128), m);
    double bf16 =
        relL2Error(fakeQuantize(m, kBF16, Granularity::TILE_1X128), m);
    EXPECT_LT(e5m6, e4m3);
    EXPECT_LT(bf16, e5m6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantizeFormatOrderTest,
                         ::testing::Values(1, 2, 3, 4, 5));

} // namespace
} // namespace dsv3::numerics
