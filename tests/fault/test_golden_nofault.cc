/**
 * @file
 * Zero-fault golden equivalence: with an empty FaultSchedule (or the
 * fault machinery merely instantiated), every result the repo
 * produces is byte-identical to the pre-fault-subsystem behavior --
 * flow rates, DeepEP phase times, and EPLB placements.
 */

#include <gtest/gtest.h>

#include "ep/deepep.hh"
#include "fault/failover.hh"
#include "fault/injector.hh"
#include "fault/schedule.hh"
#include "moe/eplb.hh"
#include "net/cluster.hh"
#include "net/flow.hh"

namespace dsv3 {
namespace {

net::Cluster
testCluster()
{
    net::ClusterConfig cfg;
    cfg.hosts = 4;
    cfg.gpusPerHost = 4;
    cfg.planes = 4;
    cfg.switchRadix = 8;
    return net::buildCluster(cfg);
}

std::vector<net::Flow>
crossFlows(const net::Cluster &c)
{
    std::vector<net::Flow> flows;
    std::uint64_t qp = 0;
    for (std::size_t s = 0; s < c.gpus.size(); ++s) {
        std::size_t d = (s + 5) % c.gpus.size();
        net::Flow f;
        f.src = c.gpus[s];
        f.dst = c.gpus[d];
        f.bytes = 1e7;
        f.qp = qp++;
        flows.push_back(f);
    }
    return flows;
}

TEST(GoldenNoFault, EmptyScheduleLeavesFlowRatesIdentical)
{
    net::Cluster plain = testCluster();
    std::vector<net::Flow> flows_plain = crossFlows(plain);
    assignPaths(plain.graph, flows_plain, net::RoutePolicy::ECMP, 3);
    std::vector<double> rates_plain =
        maxMinRates(plain.graph, flows_plain);

    net::Cluster faulty = testCluster();
    fault::FaultInjector inj(faulty);
    fault::FaultSchedule empty;
    EXPECT_EQ(inj.advanceTo(empty, 1e9), 0u);
    EXPECT_FALSE(faulty.faultStateActive());

    std::vector<net::Flow> flows_faulty = crossFlows(faulty);
    std::vector<std::size_t> unrouted;
    assignPaths(faulty.graph, flows_faulty, net::RoutePolicy::ECMP, 3,
                &unrouted);
    EXPECT_TRUE(unrouted.empty());
    net::FlowSimEngine engine(faulty.graph, flows_faulty);
    fault::FailoverResult fo = fault::failoverReroute(
        faulty, flows_faulty, engine, net::RoutePolicy::ECMP, 3);
    EXPECT_EQ(fo.rerouted, 0u);
    std::vector<double> rates_faulty = engine.solve();

    ASSERT_EQ(rates_plain.size(), rates_faulty.size());
    for (std::size_t i = 0; i < rates_plain.size(); ++i)
        EXPECT_EQ(rates_plain[i], rates_faulty[i]) << "flow " << i;
}

TEST(GoldenNoFault, SimulateFlowsUnchangedByFaultStateInit)
{
    // Touching the fault state and fully repairing must restore
    // byte-identical completion times.
    net::Cluster c = testCluster();
    std::vector<net::Flow> flows = crossFlows(c);
    assignPaths(c.graph, flows, net::RoutePolicy::ADAPTIVE);
    net::FlowSimResult before = simulateFlows(c.graph, flows);

    c.setPlaneUp(0, false);
    c.setPlaneUp(0, true);
    EXPECT_TRUE(c.faultStateActive()); // state allocated...
    EXPECT_EQ(c.edgesDown(), 0u);      // ...but everything healthy

    net::FlowSimResult after = simulateFlows(c.graph, flows);
    ASSERT_EQ(before.rates.size(), after.rates.size());
    for (std::size_t i = 0; i < before.rates.size(); ++i)
        EXPECT_EQ(before.rates[i], after.rates[i]);
    EXPECT_EQ(before.makespan, after.makespan);
    EXPECT_EQ(before.finishTimes, after.finishTimes);
}

TEST(GoldenNoFault, DeepEpDefaultFaultModelIsIdentical)
{
    net::Cluster c = testCluster();
    ep::EpWorkload w;
    w.tokensPerGpu = 64;
    w.gate.experts = 64;
    w.gate.topK = 4;

    ep::EpResult plain = simulateDeepEp(c, w);
    ep::EpResult faulty = simulateDeepEp(c, w, ep::EpFaultModel{});

    EXPECT_EQ(plain.dispatchSeconds, faulty.dispatchSeconds);
    EXPECT_EQ(plain.combineSeconds, faulty.combineSeconds);
    EXPECT_EQ(plain.dispatchNicBytesPerGpu,
              faulty.dispatchNicBytesPerGpu);
    EXPECT_EQ(plain.combineNicBytesPerGpu,
              faulty.combineNicBytesPerGpu);
    EXPECT_EQ(plain.meanNodesTouched, faulty.meanNodesTouched);
    EXPECT_EQ(plain.meanGpusTouched, faulty.meanGpusTouched);
    EXPECT_EQ(faulty.dispatchRetrySeconds, 0.0);
    EXPECT_EQ(faulty.combineRetrySeconds, 0.0);
    EXPECT_EQ(faulty.droppedDeliveries, 0.0);
    EXPECT_EQ(faulty.relayFallbacks, 0u);
    EXPECT_EQ(faulty.stalledTransfers, 0u);
}

TEST(GoldenNoFault, EplbEmptyMaskIsIdentical)
{
    std::vector<double> load;
    for (int e = 0; e < 32; ++e)
        load.push_back(1.0 + (e % 7) * 0.5);

    moe::EplbResult plain = moe::balanceExperts(load, 8, 5);
    moe::EplbResult masked =
        moe::balanceExperts(load, 8, 5, std::vector<bool>(8, false));

    EXPECT_EQ(plain.gpuSlots, masked.gpuSlots);
    EXPECT_EQ(plain.replicaCount, masked.replicaCount);
    EXPECT_EQ(plain.gpuLoad, masked.gpuLoad);
    EXPECT_EQ(plain.imbalanceBefore, masked.imbalanceBefore);
    EXPECT_EQ(plain.imbalanceAfter, masked.imbalanceAfter);
}

} // namespace
} // namespace dsv3
