/**
 * @file
 * FaultInjector: event -> topology mutation, refcounted composition,
 * and byte-identical restoration after full repair.
 */

#include <gtest/gtest.h>

#include "fault/injector.hh"
#include "fault/schedule.hh"
#include "net/cluster.hh"

namespace dsv3::fault {
namespace {

net::Cluster
smallCluster()
{
    net::ClusterConfig cfg;
    cfg.hosts = 4;
    cfg.gpusPerHost = 2;
    cfg.planes = 2;
    cfg.switchRadix = 8;
    return net::buildCluster(cfg);
}

std::vector<double>
capacities(const net::Graph &g)
{
    std::vector<double> caps;
    for (net::EdgeId e = 0; e < g.edgeCount(); ++e)
        caps.push_back(g.edge(e).capacity);
    return caps;
}

FaultEvent
ev(FaultKind kind, net::NodeId a = net::kInvalidNode,
   net::NodeId b = net::kInvalidNode)
{
    FaultEvent e;
    e.kind = kind;
    e.nodeA = a;
    e.nodeB = b;
    return e;
}

TEST(FaultInjector, LinkDownZeroesBothDirections)
{
    net::Cluster c = smallCluster();
    FaultDomain d = FaultDomain::fromCluster(c);
    ASSERT_FALSE(d.links.empty());
    FaultInjector inj(c);
    auto link = d.links[0];

    inj.apply(ev(FaultKind::LINK_DOWN, link.a, link.b));
    EXPECT_EQ(inj.linksDown(), 1u);
    EXPECT_EQ(c.edgesDown(), 2u); // both directions of the cable
    EXPECT_EQ(inj.topologyEpoch(), 1u);

    inj.apply(ev(FaultKind::LINK_UP, link.a, link.b));
    EXPECT_EQ(inj.linksDown(), 0u);
    EXPECT_EQ(c.edgesDown(), 0u);
}

TEST(FaultInjector, OverlappingFaultsCompose)
{
    net::Cluster c = smallCluster();
    std::vector<double> healthy = capacities(c.graph);
    FaultInjector inj(c);

    // Take a whole plane down, then a switch inside it, then repair
    // in the opposite order: the switch must stay down until its own
    // repair, and full repair restores capacities byte-identically.
    net::NodeId sw = net::kInvalidNode;
    for (net::NodeId n = 0; n < c.graph.nodeCount(); ++n) {
        if (c.graph.node(n).kind == net::NodeKind::LEAF &&
            c.graph.node(n).plane == 0) {
            sw = n;
            break;
        }
    }
    ASSERT_NE(sw, net::kInvalidNode);

    FaultEvent plane;
    plane.kind = FaultKind::PLANE_DOWN;
    plane.plane = 0;
    inj.apply(plane);
    std::size_t down_plane_only = c.edgesDown();
    EXPECT_GT(down_plane_only, 0u);

    inj.apply(ev(FaultKind::SWITCH_DOWN, sw));
    plane.kind = FaultKind::PLANE_UP;
    inj.apply(plane);
    // Switch still held down by its own fault.
    EXPECT_FALSE(c.nodeUp(sw));
    EXPECT_GT(c.edgesDown(), 0u);

    inj.apply(ev(FaultKind::SWITCH_UP, sw));
    EXPECT_TRUE(c.nodeUp(sw));
    EXPECT_EQ(c.edgesDown(), 0u);
    EXPECT_EQ(capacities(c.graph), healthy);
}

TEST(FaultInjector, DegradeAndRestore)
{
    net::Cluster c = smallCluster();
    FaultDomain d = FaultDomain::fromCluster(c);
    std::vector<double> healthy = capacities(c.graph);
    FaultInjector inj(c);
    auto link = d.links[0];
    net::EdgeId e = c.graph.findEdge(link.a, link.b);
    ASSERT_NE(e, net::kInvalidEdge);

    FaultEvent deg = ev(FaultKind::LINK_DEGRADED, link.a, link.b);
    deg.factor = 0.25;
    inj.apply(deg);
    EXPECT_EQ(inj.linksDegraded(), 1u);
    EXPECT_DOUBLE_EQ(c.graph.edge(e).capacity,
                     0.25 * c.baseCapacity[e]);
    EXPECT_TRUE(inj.fabricDegraded());

    deg.factor = 1.0;
    inj.apply(deg);
    EXPECT_EQ(inj.linksDegraded(), 0u);
    EXPECT_FALSE(inj.fabricDegraded());
    EXPECT_EQ(capacities(c.graph), healthy);
}

TEST(FaultInjector, RankDownKillsGpuNodeAndTracksDeadSet)
{
    net::Cluster c = smallCluster();
    FaultInjector inj(c);
    FaultEvent e;
    e.kind = FaultKind::RANK_DOWN;
    e.rank = 3;
    inj.apply(e);
    EXPECT_TRUE(inj.rankDead(3));
    EXPECT_EQ(inj.ranksDown(), 1u);
    EXPECT_FALSE(c.nodeUp(c.gpus[3]));

    e.kind = FaultKind::RANK_UP;
    inj.apply(e);
    EXPECT_FALSE(inj.rankDead(3));
    EXPECT_TRUE(c.nodeUp(c.gpus[3]));
    EXPECT_EQ(c.edgesDown(), 0u);
}

TEST(FaultInjector, SdcCountsWithoutTopologyChange)
{
    net::Cluster c = smallCluster();
    FaultInjector inj(c);
    FaultEvent e;
    e.kind = FaultKind::SDC;
    e.rank = 1;
    inj.apply(e);
    EXPECT_EQ(inj.sdcSeen(), 1u);
    EXPECT_EQ(inj.topologyEpoch(), 0u);
    EXPECT_EQ(c.edgesDown(), 0u);
}

TEST(FaultInjector, AdvanceToStreamsCursor)
{
    net::Cluster c = smallCluster();
    std::vector<FaultEvent> evs;
    FaultEvent e;
    e.kind = FaultKind::RANK_DOWN;
    e.rank = 0;
    e.time = 1.0;
    evs.push_back(e);
    e.kind = FaultKind::RANK_UP;
    e.time = 2.0;
    evs.push_back(e);
    e.kind = FaultKind::SDC;
    e.rank = 1;
    e.time = 3.0;
    evs.push_back(e);
    FaultSchedule sched(evs);

    FaultInjector inj(c);
    EXPECT_EQ(inj.advanceTo(sched, 0.5), 0u);
    EXPECT_EQ(inj.advanceTo(sched, 1.5), 1u);
    EXPECT_TRUE(inj.rankDead(0));
    EXPECT_EQ(inj.advanceTo(sched, 10.0), 2u);
    EXPECT_FALSE(inj.rankDead(0));
    EXPECT_EQ(inj.sdcSeen(), 1u);
    EXPECT_EQ(inj.eventsApplied(), 3u);
    // Cursor does not replay.
    EXPECT_EQ(inj.advanceTo(sched, 20.0), 0u);
}

} // namespace
} // namespace dsv3::fault
