/**
 * @file
 * FaultSchedule: canonical ordering, generation statistics, and the
 * determinism guarantees the Monte-Carlo validation rests on.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/thread_pool.hh"
#include "fault/schedule.hh"
#include "net/cluster.hh"

namespace dsv3::fault {
namespace {

net::Cluster
smallCluster()
{
    net::ClusterConfig cfg;
    cfg.hosts = 4;
    cfg.gpusPerHost = 2;
    cfg.planes = 2;
    cfg.switchRadix = 8;
    return net::buildCluster(cfg);
}

TEST(FaultSchedule, EmptyByDefault)
{
    FaultSchedule s;
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.size(), 0u);
    EXPECT_EQ(s.traceText(), "");
}

TEST(FaultSchedule, ExplicitEventsSortedByTime)
{
    FaultEvent a;
    a.time = 5.0;
    a.kind = FaultKind::RANK_DOWN;
    a.rank = 3;
    FaultEvent b;
    b.time = 1.0;
    b.kind = FaultKind::SDC;
    b.rank = 7;
    FaultSchedule s({a, b});
    ASSERT_EQ(s.size(), 2u);
    EXPECT_EQ(s.events()[0].time, 1.0);
    EXPECT_EQ(s.events()[1].time, 5.0);
}

TEST(FaultSchedule, DomainFromClusterCountsComponents)
{
    net::Cluster cluster = smallCluster();
    FaultDomain d = FaultDomain::fromCluster(cluster);
    EXPECT_EQ(d.ranks, cluster.gpus.size());
    EXPECT_FALSE(d.links.empty());
    EXPECT_FALSE(d.switches.empty());
    // Two planes with switches.
    ASSERT_EQ(d.planes.size(), 2u);
    EXPECT_EQ(d.planes[0], 0);
    EXPECT_EQ(d.planes[1], 1);
    // Every link is a duplex cable recorded once, a < b.
    for (const FaultDomain::Link &l : d.links)
        EXPECT_LT(l.a, l.b);
}

TEST(FaultSchedule, GenerateIsDeterministicInSeed)
{
    FaultDomain d = FaultDomain::ranksOnly(64);
    FaultRates r;
    r.rankFailPerHour = 0.1;
    r.sdcPerHour = 0.01;
    FaultSchedule s1 = FaultSchedule::generate(d, r, 3600.0, 42);
    FaultSchedule s2 = FaultSchedule::generate(d, r, 3600.0, 42);
    FaultSchedule s3 = FaultSchedule::generate(d, r, 3600.0, 43);
    EXPECT_EQ(s1.traceText(), s2.traceText());
    EXPECT_NE(s1.traceText(), s3.traceText());
    EXPECT_FALSE(s1.empty());
}

TEST(FaultSchedule, GenerateIsIndependentOfThreadCount)
{
    // Schedules are generated serially, but the determinism contract
    // is that any surrounding parallelism cannot perturb them: the
    // trace is a pure function of (domain, rates, horizon, seed).
    FaultDomain d = FaultDomain::ranksOnly(32);
    FaultRates r;
    r.rankFailPerHour = 0.2;
    std::string traces[3];
    std::size_t widths[3] = {1, 2, 8};
    for (int i = 0; i < 3; ++i) {
        setParallelForWidth(widths[i]);
        std::vector<std::string> partial(4);
        parallelFor(4, [&](std::size_t t) {
            partial[t] = FaultSchedule::generate(d, r, 7200.0, 9 + t)
                             .traceText();
        });
        std::string all;
        for (const std::string &p : partial)
            all += p;
        traces[i] = all;
    }
    setParallelForWidth(0);
    EXPECT_EQ(traces[0], traces[1]);
    EXPECT_EQ(traces[0], traces[2]);
}

TEST(FaultSchedule, EventTimesWithinHorizonAndSorted)
{
    net::Cluster cluster = smallCluster();
    FaultDomain d = FaultDomain::fromCluster(cluster);
    FaultRates r;
    r.linkFailPerHour = 0.5;
    r.linkDegradePerHour = 0.5;
    r.switchFailPerHour = 0.5;
    r.planeFailPerHour = 0.2;
    r.rankFailPerHour = 0.5;
    r.sdcPerHour = 0.1;
    const double horizon = 4.0 * 3600.0;
    FaultSchedule s = FaultSchedule::generate(d, r, horizon, 7);
    ASSERT_FALSE(s.empty());
    double prev = 0.0;
    for (const FaultEvent &ev : s.events()) {
        EXPECT_GE(ev.time, prev);
        EXPECT_LT(ev.time, horizon);
        prev = ev.time;
    }
}

TEST(FaultSchedule, FailureRateMatchesConfiguredMtbf)
{
    // 256 ranks at 0.5 fails/hour for 10 hours ~ 1280 expected
    // failures; the Poisson draw should land within a few sigma.
    FaultDomain d = FaultDomain::ranksOnly(256);
    FaultRates r;
    r.rankFailPerHour = 0.5;
    r.rankRepairSec = 0.0;
    FaultSchedule s =
        FaultSchedule::generate(d, r, 10.0 * 3600.0, 123);
    std::size_t downs = 0;
    for (const FaultEvent &ev : s.events())
        if (ev.kind == FaultKind::RANK_DOWN)
            ++downs;
    const double expected = 256 * 0.5 * 10.0;
    EXPECT_NEAR((double)downs, expected, 5.0 * std::sqrt(expected));
}

TEST(FaultSchedule, DescribeNamesEveryKind)
{
    FaultEvent ev;
    ev.time = 1.5;
    ev.kind = FaultKind::LINK_DEGRADED;
    ev.nodeA = 3;
    ev.nodeB = 9;
    ev.factor = 0.25;
    std::string s = ev.describe();
    EXPECT_NE(s.find("link_degraded"), std::string::npos);
    EXPECT_NE(s.find("0.2500"), std::string::npos);
    for (FaultKind k :
         {FaultKind::LINK_DOWN, FaultKind::LINK_UP,
          FaultKind::LINK_DEGRADED, FaultKind::SWITCH_DOWN,
          FaultKind::SWITCH_UP, FaultKind::PLANE_DOWN,
          FaultKind::PLANE_UP, FaultKind::RANK_DOWN,
          FaultKind::RANK_UP, FaultKind::SDC})
        EXPECT_STRNE(faultKindName(k), "?");
}

} // namespace
} // namespace dsv3::fault
