/**
 * @file
 * Failover rerouting: broken flows move to surviving paths, the
 * incremental engine update is bit-identical to a from-scratch
 * rebuild, cross-plane fallback appears when a plane dies, and
 * partitioned flows are retired as stalled.
 */

#include <gtest/gtest.h>

#include "fault/failover.hh"
#include "fault/injector.hh"
#include "fault/schedule.hh"
#include "net/cluster.hh"
#include "net/flow.hh"

namespace dsv3::fault {
namespace {

net::Cluster
smallCluster(net::Fabric fabric = net::Fabric::MPFT)
{
    net::ClusterConfig cfg;
    cfg.fabric = fabric;
    cfg.hosts = 4;
    cfg.gpusPerHost = 2;
    cfg.planes = 2;
    cfg.switchRadix = 8;
    return net::buildCluster(cfg);
}

std::vector<net::Flow>
allToAll(const net::Cluster &c, double bytes = 1e6)
{
    std::vector<net::Flow> flows;
    std::uint64_t qp = 0;
    for (std::size_t s = 0; s < c.gpus.size(); ++s)
        for (std::size_t d = 0; d < c.gpus.size(); ++d)
            if (s != d) {
                net::Flow f;
                f.src = c.gpus[s];
                f.dst = c.gpus[d];
                f.bytes = bytes;
                f.qp = qp++;
                flows.push_back(f);
            }
    return flows;
}

TEST(Failover, NoFaultsIsNoOp)
{
    net::Cluster c = smallCluster();
    std::vector<net::Flow> flows = allToAll(c);
    assignPaths(c.graph, flows, net::RoutePolicy::ADAPTIVE);
    net::FlowSimEngine engine(c.graph, flows);
    std::vector<double> before = engine.solve();

    FailoverResult fo = failoverReroute(c, flows, engine,
                                        net::RoutePolicy::ADAPTIVE);
    EXPECT_EQ(fo.rerouted, 0u);
    EXPECT_TRUE(fo.stalled.empty());
    EXPECT_EQ(fo.checked, flows.size());
    std::vector<double> after = engine.solve();
    EXPECT_EQ(before, after);
}

TEST(Failover, ReroutesAroundDeadLeafAndRestoresService)
{
    net::Cluster c = smallCluster();
    std::vector<net::Flow> flows = allToAll(c);
    assignPaths(c.graph, flows, net::RoutePolicy::ADAPTIVE);
    net::FlowSimEngine engine(c.graph, flows);
    engine.solve();

    net::NodeId leaf = net::kInvalidNode;
    for (net::NodeId n = 0; n < c.graph.nodeCount(); ++n)
        if (c.graph.node(n).kind == net::NodeKind::LEAF) {
            leaf = n;
            break;
        }
    ASSERT_NE(leaf, net::kInvalidNode);
    c.setNodeUp(leaf, false);

    FailoverResult fo = failoverReroute(c, flows, engine,
                                        net::RoutePolicy::ADAPTIVE);
    EXPECT_GT(fo.rerouted, 0u);
    EXPECT_TRUE(fo.stalled.empty());

    // Every flow still runs, and no surviving path touches the dead
    // leaf's zero-capacity edges.
    const std::vector<double> &rates = engine.solve();
    for (std::size_t i = 0; i < flows.size(); ++i) {
        EXPECT_TRUE(engine.flowActive(i));
        EXPECT_GT(rates[i], 0.0);
        EXPECT_FALSE(flowBroken(c.graph, flows[i]));
    }
}

TEST(Failover, IncrementalMatchesRebuild)
{
    net::Cluster c = smallCluster();
    std::vector<net::Flow> flows = allToAll(c);
    assignPaths(c.graph, flows, net::RoutePolicy::ADAPTIVE);
    net::FlowSimEngine engine(c.graph, flows);
    engine.solve();

    FaultInjector inj(c);
    FaultEvent plane;
    plane.kind = FaultKind::PLANE_DOWN;
    plane.plane = 0;
    inj.apply(plane);

    FailoverResult fo = failoverReroute(c, flows, engine,
                                        net::RoutePolicy::ADAPTIVE);
    ASSERT_TRUE(fo.stalled.empty());
    EXPECT_GT(fo.rerouted, 0u);
    std::vector<double> incremental = engine.solve();

    // A fresh engine over the same rerouted flow set must produce
    // bit-identical rates.
    net::FlowSimEngine fresh(c.graph, flows);
    std::vector<double> rebuilt = fresh.solve();
    ASSERT_EQ(incremental.size(), rebuilt.size());
    for (std::size_t i = 0; i < incremental.size(); ++i)
        EXPECT_EQ(incremental[i], rebuilt[i]) << "flow " << i;
}

TEST(Failover, PlaneOutageFallsBackAcrossPlanes)
{
    // With plane 0 dead, a GPU whose NIC lives on plane 0 can only
    // reach another host by first hopping over NVLink to a sibling
    // GPU on plane 1 (the PXN relay pattern): its rerouted paths must
    // exist and be longer than the direct ones.
    net::Cluster c = smallCluster();
    std::vector<net::Flow> flows;
    net::Flow f;
    f.src = c.gpu(0, 0); // plane-0 NIC
    f.dst = c.gpu(1, 0);
    f.bytes = 1e6;
    flows.push_back(f);
    assignPaths(c.graph, flows, net::RoutePolicy::ADAPTIVE);
    std::size_t healthy_hops = flows[0].paths[0].size();
    net::FlowSimEngine engine(c.graph, flows);
    engine.solve();

    c.setPlaneUp(0, false);
    FailoverResult fo = failoverReroute(c, flows, engine,
                                        net::RoutePolicy::ADAPTIVE);
    EXPECT_EQ(fo.rerouted, 1u);
    ASSERT_FALSE(flows[0].paths.empty());
    EXPECT_GT(flows[0].paths[0].size(), healthy_hops);
    const std::vector<double> &rates = engine.solve();
    EXPECT_GT(rates[0], 0.0);
}

TEST(Failover, PartitionedFlowsRetireAsStalled)
{
    net::Cluster c = smallCluster();
    std::vector<net::Flow> flows;
    net::Flow f;
    f.src = c.gpu(0, 0);
    f.dst = c.gpu(1, 0); // cross-host
    f.bytes = 1e6;
    flows.push_back(f);
    f.src = c.gpu(2, 0);
    f.dst = c.gpu(2, 1); // intra-host (NVLink only)
    f.qp = 1;
    flows.push_back(f);
    assignPaths(c.graph, flows, net::RoutePolicy::ADAPTIVE);
    net::FlowSimEngine engine(c.graph, flows);
    engine.solve();

    c.setPlaneUp(0, false);
    c.setPlaneUp(1, false); // whole scale-out fabric gone

    FailoverResult fo = failoverReroute(c, flows, engine,
                                        net::RoutePolicy::ADAPTIVE);
    ASSERT_EQ(fo.stalled.size(), 1u);
    EXPECT_EQ(fo.stalled[0], 0u);
    EXPECT_FALSE(engine.flowActive(0));
    EXPECT_TRUE(engine.flowActive(1)); // NVLink path survives
    const std::vector<double> &rates = engine.solve();
    EXPECT_EQ(rates[0], 0.0);
    EXPECT_GT(rates[1], 0.0);
}

TEST(Failover, EcmpRerouteIsDeterministic)
{
    net::Cluster c1 = smallCluster();
    net::Cluster c2 = smallCluster();
    std::vector<net::Flow> f1 = allToAll(c1);
    std::vector<net::Flow> f2 = allToAll(c2);
    assignPaths(c1.graph, f1, net::RoutePolicy::ECMP, 5);
    assignPaths(c2.graph, f2, net::RoutePolicy::ECMP, 5);
    net::FlowSimEngine e1(c1.graph, f1);
    net::FlowSimEngine e2(c2.graph, f2);
    e1.solve();
    e2.solve();
    c1.setPlaneUp(0, false);
    c2.setPlaneUp(0, false);
    failoverReroute(c1, f1, e1, net::RoutePolicy::ECMP, 5);
    failoverReroute(c2, f2, e2, net::RoutePolicy::ECMP, 5);
    EXPECT_EQ(e1.solve(), e2.solve());
}

} // namespace
} // namespace dsv3::fault
