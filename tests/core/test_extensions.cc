/**
 * @file
 * Integration tests for the extension reports (discussion-section
 * reproductions and ablations).
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "core/report_extensions.hh"
#include "model/config.hh"
#include "model/kv_cache.hh"

namespace dsv3::core {
namespace {

double
num(const std::string &cell)
{
    return std::strtod(cell.c_str(), nullptr);
}

TEST(Extensions, KvSurveyBaselineAndMla)
{
    Table t = reproduceKvSurvey();
    ASSERT_GE(t.rowCount(), 6u);
    // Baseline row is 100%; MLA row ~13.6% of the GQA baseline.
    EXPECT_NEAR(num(t.cell(0, 3)), 100.0, 0.1);
    double mla_pct = num(t.cell(4, 3));
    EXPECT_NEAR(mla_pct, 100.0 / 7.34, 0.3);
}

TEST(Extensions, KvSurveyStrategiesAllShrink)
{
    Table t = reproduceKvSurvey();
    for (std::size_t r = 1; r < t.rowCount(); ++r)
        EXPECT_LT(num(t.cell(r, 3)), 100.0) << "row " << r;
}

TEST(Extensions, MlaEquivalenceIsNumericallyExact)
{
    Table t = reproduceMlaEquivalence();
    for (std::size_t r = 0; r < t.rowCount(); ++r)
        EXPECT_LT(num(t.cell(r, 1)), 1e-9) << "row " << r;
}

TEST(Extensions, EplbAlwaysImproves)
{
    Table t = reproduceEplb();
    for (std::size_t r = 0; r < t.rowCount(); ++r) {
        double before = num(t.cell(r, 1));
        double after = num(t.cell(r, 2));
        EXPECT_LE(after, before + 1e-9) << "row " << r;
        EXPECT_LT(after, 1.2) << "row " << r;
    }
}

TEST(Extensions, OffloadOrderingMatchesPaperArgument)
{
    Table t = reproduceOffload();
    ASSERT_EQ(t.rowCount(), 3u);
    // compute efficiency: hardware offload > SM forwarding and
    // > RDMA-only for this node-limited workload.
    double sm = num(t.cell(0, 4));
    double rdma = num(t.cell(1, 4));
    double hw = num(t.cell(2, 4));
    EXPECT_GT(hw, sm);
    EXPECT_GT(hw, rdma);
}

TEST(Extensions, ContentionShowsPrioritizationValue)
{
    Table t = reproduceContention();
    ASSERT_EQ(t.rowCount(), 3u);
    double fair = num(t.cell(0, 3));
    double prio = num(t.cell(1, 3));
    EXPECT_GT(fair, 1.1);           // today: EP stalls
    EXPECT_NEAR(prio, 1.0, 0.01);   // with TC: no slowdown
}

TEST(Extensions, ReliabilityDegradesWithScaleAndHwHelps)
{
    Table t = reproduceReliability();
    ASSERT_GE(t.rowCount(), 3u);
    double prev_heur = 101.0;
    for (std::size_t r = 0; r < t.rowCount(); ++r) {
        double heur = num(t.cell(r, 3));
        double hw = num(t.cell(r, 4));
        EXPECT_LT(heur, prev_heur);
        EXPECT_GE(hw, heur);
        prev_heur = heur;
    }
}

TEST(Extensions, InNetworkMonotoneSavings)
{
    Table t = reproduceInNetwork();
    ASSERT_EQ(t.rowCount(), 4u);
    // Compare via the normalized "vs unicast" column (the time
    // column mixes ns/us units).
    double prev = 101.0;
    for (std::size_t r = 0; r < t.rowCount(); ++r) {
        double pct = num(t.cell(r, 4));
        EXPECT_LT(pct, prev) << "row " << r;
        prev = pct;
    }
}

TEST(Extensions, OrderingFenceUnderutilizesAtLowConcurrency)
{
    Table t = reproduceOrdering();
    // First row: sender fence, 1 stream -> tiny utilization.
    EXPECT_LT(num(t.cell(0, 3)), 10.0);
    // RAR rows always show 100%.
    for (std::size_t r = 0; r < t.rowCount(); ++r) {
        if (t.cell(r, 0).find("RAR") != std::string::npos) {
            EXPECT_NEAR(num(t.cell(r, 3)), 100.0, 0.1);
        }
    }
}

TEST(Extensions, IncastSharedQueueWorst)
{
    Table t = reproduceIncast();
    ASSERT_EQ(t.rowCount(), 3u);
    double shared = num(t.cell(0, 2));
    double voq = num(t.cell(1, 2));
    double cc = num(t.cell(2, 2));
    EXPECT_GT(shared, voq * 10.0);
    EXPECT_LE(cc, voq + 1e-9);
}

TEST(Extensions, DisaggregationImprovesTpot)
{
    Table t = reproduceDisaggregation();
    ASSERT_EQ(t.rowCount(), 3u);
    double coloc = num(t.cell(0, 1));
    double disagg = num(t.cell(1, 1));
    EXPECT_GT(coloc, disagg);
}

TEST(Extensions, PrecisionValidationMatchesPaperScale)
{
    Table t = reproducePrecisionValidation();
    ASSERT_EQ(t.rowCount(), 3u);
    // FP8 fine-grained pseudo-loss diff lands in the sub-percent
    // band the paper's < 0.25% claim lives in.
    double fp8_loss = num(t.cell(1, 2));
    EXPECT_LT(fp8_loss, 1.0);
    // And beats the per-tensor raw-FP22 recipe.
    double naive_loss = num(t.cell(2, 2));
    EXPECT_LT(fp8_loss, naive_loss);
}

} // namespace
} // namespace dsv3::core
