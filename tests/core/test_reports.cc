/**
 * @file
 * Integration tests: the report facade must reproduce the paper's
 * headline numbers. Each test parses the rendered table cells.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/thread_pool.hh"
#include "core/report.hh"
#include "net/route_cache.hh"

namespace dsv3::core {
namespace {

/** Parse the leading double out of a formatted cell ("70.272 KB"). */
double
num(const std::string &cell)
{
    return std::strtod(cell.c_str(), nullptr);
}

TEST(Reports, Table1MatchesPaperExactly)
{
    Table t = reproduceTable1();
    ASSERT_EQ(t.rowCount(), 3u);
    EXPECT_DOUBLE_EQ(num(t.cell(0, 2)), 70.272);
    EXPECT_DOUBLE_EQ(num(t.cell(1, 2)), 327.680);
    EXPECT_DOUBLE_EQ(num(t.cell(2, 2)), 516.096);
    EXPECT_EQ(t.cell(0, 1), "MLA");
    EXPECT_EQ(t.cell(1, 1), "GQA");
}

TEST(Reports, Table2MatchesPaperWhereDerivable)
{
    Table t = reproduceTable2();
    ASSERT_EQ(t.rowCount(), 4u);
    EXPECT_NEAR(num(t.cell(0, 3)), 155.0, 5.0);   // DeepSeek-V2
    EXPECT_NEAR(num(t.cell(1, 3)), 250.0, 7.0);   // DeepSeek-V3
    EXPECT_NEAR(num(t.cell(3, 3)), 2448.0, 50.0); // LLaMA-405B
    // Qwen row: paper says 394, public config derives ~445 (see
    // EXPERIMENTS.md); pin our value.
    EXPECT_NEAR(num(t.cell(2, 3)), 445.0, 10.0);
}

TEST(Reports, Table3MatchesPaperCounts)
{
    Table t = reproduceTable3();
    // Rows: Endpoints, Switches, Links, Cost, Cost/Endpoint.
    EXPECT_EQ(t.cell(0, 1), "2,048");
    EXPECT_EQ(t.cell(0, 2), "16,384");
    EXPECT_EQ(t.cell(0, 3), "65,536");
    EXPECT_EQ(t.cell(0, 4), "32,928");
    EXPECT_EQ(t.cell(0, 5), "261,632");
    EXPECT_EQ(t.cell(1, 1), "96");
    EXPECT_EQ(t.cell(1, 2), "768");
    EXPECT_EQ(t.cell(1, 3), "5,120");
    EXPECT_EQ(t.cell(2, 5), "384,272");
    // Cost per endpoint (k$): 4.39 / 4.39 / 7.50 / ~4.4 / ~5.8.
    EXPECT_NEAR(num(t.cell(4, 1)), 4.39, 0.05);
    EXPECT_NEAR(num(t.cell(4, 2)), 4.39, 0.05);
    EXPECT_NEAR(num(t.cell(4, 3)), 7.50, 0.1);
    EXPECT_NEAR(num(t.cell(4, 4)), 4.4, 0.1);
    EXPECT_NEAR(num(t.cell(4, 5)), 5.8, 0.1);
}

TEST(Reports, Table5MatchesPaperLatencies)
{
    Table t = reproduceTable5();
    ASSERT_EQ(t.rowCount(), 3u);
    EXPECT_NEAR(num(t.cell(0, 1)), 3.60, 0.05); // RoCE same leaf
    EXPECT_NEAR(num(t.cell(0, 2)), 5.60, 0.05); // RoCE cross leaf
    EXPECT_NEAR(num(t.cell(1, 1)), 2.80, 0.05); // IB same leaf
    EXPECT_NEAR(num(t.cell(1, 2)), 3.70, 0.05); // IB cross leaf
    EXPECT_NEAR(num(t.cell(2, 1)), 3.33, 0.05); // NVLink
}

TEST(Reports, SpeedLimitMatchesPaper)
{
    Table t = reproduceSpeedLimit();
    ASSERT_EQ(t.rowCount(), 2u);
    EXPECT_NEAR(num(t.cell(0, 2)), 120.96, 0.1); // us per stage
    EXPECT_NEAR(num(t.cell(0, 4)), 14.76, 0.05); // ms TPOT
    EXPECT_NEAR(num(t.cell(0, 5)), 67.0, 2.0);   // tokens/s
    EXPECT_NEAR(num(t.cell(1, 2)), 6.72, 0.05);  // NVL72 us
    EXPECT_NEAR(num(t.cell(1, 5)), 1200.0, 40.0);
}

TEST(Reports, MtpShowsPaperSpeedup)
{
    Table t = reproduceMtp();
    // Row with 90% acceptance ends near 1.8x.
    bool found = false;
    for (std::size_t r = 0; r < t.rowCount(); ++r) {
        if (t.cell(r, 0) == "90%") {
            EXPECT_NEAR(num(t.cell(r, 3)), 1.81, 0.03);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(Reports, LocalInferenceShowsMoeAdvantage)
{
    Table t = reproduceLocalInference();
    ASSERT_EQ(t.rowCount(), 3u);
    double moe_tps = num(t.cell(0, 3));
    double dense_tps = num(t.cell(1, 3));
    double kt_tps = num(t.cell(2, 3));
    EXPECT_GT(moe_tps, 18.0);   // "nearly 20 TPS, or even twice"
    EXPECT_LT(dense_tps, 10.0); // "single-digit TPS"
    EXPECT_NEAR(kt_tps, 20.0, 5.0);
}

TEST(Reports, NodeLimitedRoutingShape)
{
    Table t = reproduceNodeLimited();
    // First row is the unrestricted baseline (limit 8).
    EXPECT_NEAR(num(t.cell(0, 1)), 5.25, 0.3); // E[M] unrestricted
    // The limit-4 row: E[M] < 4 and max M == 4.
    for (std::size_t r = 0; r < t.rowCount(); ++r) {
        if (t.cell(r, 0) == "4") {
            EXPECT_LE(num(t.cell(r, 1)), 4.0);
            EXPECT_DOUBLE_EQ(num(t.cell(r, 2)), 4.0);
        }
    }
}

TEST(Reports, Fp8AccumulationSweepGrowsWithK)
{
    Table t = reproduceFp8AccumulationSweep();
    ASSERT_GE(t.rowCount(), 3u);
    double first = num(t.cell(0, 2));
    double last = num(t.cell(t.rowCount() - 1, 2));
    EXPECT_GT(last, first * 5.0); // no-promotion error grows with K
    // The promoted column stays flat and small.
    for (std::size_t r = 0; r < t.rowCount(); ++r)
        EXPECT_LT(num(t.cell(r, 1)), 0.1);
}

TEST(Reports, LogFmtBeatsFp8Formats)
{
    Table t = reproduceLogFmt();
    double snr_e4m3 = 0.0, snr_e5m2 = 0.0, snr_log8 = 0.0;
    for (std::size_t r = 0; r < t.rowCount(); ++r) {
        if (t.cell(r, 0) == "E4M3")
            snr_e4m3 = num(t.cell(r, 2));
        if (t.cell(r, 0) == "E5M2")
            snr_e5m2 = num(t.cell(r, 2));
        if (t.cell(r, 0) == "LogFMT-8")
            snr_log8 = num(t.cell(r, 2));
    }
    EXPECT_GT(snr_log8, snr_e4m3);
    EXPECT_GT(snr_log8, snr_e5m2);
}

TEST(Reports, OverlapTableShape)
{
    Table t = reproduceOverlap();
    ASSERT_EQ(t.rowCount(), 3u);
    // Every scenario must speed up and never exceed 2x.
    for (std::size_t r = 0; r < t.rowCount(); ++r) {
        double speedup = num(t.cell(r, 5));
        EXPECT_GT(speedup, 1.0);
        EXPECT_LE(speedup, 2.0);
    }
}

TEST(Reports, Figure6LatencyParityAndMonotonicity)
{
    Table t = reproduceFigure6();
    double prev = 0.0;
    for (std::size_t r = 0; r < t.rowCount(); ++r) {
        double mpft = num(t.cell(r, 1));
        double mrft = num(t.cell(r, 2));
        EXPECT_NEAR(mpft / mrft, 1.0, 0.05) << "row " << r;
        EXPECT_GE(mpft, prev); // grows with message size
        prev = mpft;
    }
}

TEST(Reports, Figure8RoutingOrder)
{
    Table t = reproduceFigure8();
    for (std::size_t r = 0; r < t.rowCount(); ++r) {
        double ecmp = num(t.cell(r, 2));
        double ar = num(t.cell(r, 3));
        double stat = num(t.cell(r, 4));
        EXPECT_LT(ecmp, ar) << "row " << r;
        EXPECT_LE(stat, ar * 1.001) << "row " << r;
        EXPECT_GE(stat, ecmp * 0.9) << "row " << r;
    }
}

TEST(Reports, SweepTablesInvariantAcrossWidthAndCache)
{
    // The sweep-driven reproductions must render byte-identically at
    // every parallelFor width and whether the route cache is cold,
    // warm, or disabled -- that is the contract the route cache and
    // the sweep driver are built on.
    net::RouteCache::global().clear();
    const std::string fig8 = reproduceFigure8().render();
    const std::string t3 = reproduceTable3().render();
    // Warm cache, same width.
    EXPECT_EQ(reproduceFigure8().render(), fig8);

    for (std::size_t width : {std::size_t(1), std::size_t(2)}) {
        setParallelForWidth(width);
        net::RouteCache::global().clear();
        EXPECT_EQ(reproduceFigure8().render(), fig8) << width;
        EXPECT_EQ(reproduceTable3().render(), t3) << width;
    }
    setParallelForWidth(0);

    net::RouteCache::setEnabled(false);
    EXPECT_EQ(reproduceFigure8().render(), fig8);
    net::RouteCache::setEnabled(true);
}

TEST(Reports, CsvExportsParse)
{
    // Every fast report renders to CSV with consistent column counts.
    for (const Table &t :
         {reproduceTable1(), reproduceTable2(), reproduceTable3(),
          reproduceTable5(), reproduceSpeedLimit(), reproduceMtp()}) {
        std::string csv = t.renderCsv();
        EXPECT_FALSE(csv.empty());
        EXPECT_NE(csv.find('\n'), std::string::npos);
    }
}

} // namespace
} // namespace dsv3::core
