/**
 * @file
 * DeepEP fault degradation: relay-rank selection hardening (dead and
 * missing GPUs), cross-plane fallback accounting, dropped deliveries
 * on crashed expert ranks, and retry penalties on degraded links.
 */

#include <gtest/gtest.h>

#include "ep/deepep.hh"
#include "net/cluster.hh"

namespace dsv3::ep {
namespace {

net::Cluster
mpft(std::size_t hosts, std::size_t gpus_per_host = 4)
{
    net::ClusterConfig cc;
    cc.fabric = net::Fabric::MPFT;
    cc.hosts = hosts;
    cc.gpusPerHost = gpus_per_host;
    cc.planes = gpus_per_host;
    cc.switchRadix = 8;
    return buildCluster(cc);
}

EpWorkload
smallWorkload()
{
    EpWorkload w;
    w.tokensPerGpu = 128;
    w.gate.experts = 64;
    w.gate.topK = 4;
    return w;
}

TEST(ChooseRelay, PrefersSamePlaneGpu)
{
    net::Cluster c = mpft(4);
    for (std::size_t plane = 0; plane < 4; ++plane)
        EXPECT_EQ(chooseRelayRank(c, 2, plane), 2 * 4 + plane);
}

TEST(ChooseRelay, FallsBackToNearestLivePlane)
{
    net::Cluster c = mpft(4);
    std::vector<bool> dead(c.gpus.size(), false);
    dead[2 * 4 + 1] = true; // host 2, plane 1
    EXPECT_EQ(chooseRelayRank(c, 2, 1, &dead), 2 * 4 + 2);
    dead[2 * 4 + 2] = true;
    EXPECT_EQ(chooseRelayRank(c, 2, 1, &dead), 2 * 4 + 3);
}

TEST(ChooseRelay, WrapsAroundPlaneIndex)
{
    net::Cluster c = mpft(4);
    std::vector<bool> dead(c.gpus.size(), false);
    dead[1 * 4 + 3] = true; // host 1, last plane
    EXPECT_EQ(chooseRelayRank(c, 1, 3, &dead), 1 * 4 + 0);
}

TEST(ChooseRelay, ValidatesMissingGpusOnShortHost)
{
    // Satellite (c): heterogeneous per-host GPU counts. Truncate the
    // rank list so the last host only has 2 of its 4 GPUs; the naive
    // h * per_host + src_plane index would run off the end.
    net::Cluster c = mpft(2);
    c.gpus.pop_back();
    c.gpus.pop_back(); // host 1 keeps ranks 4 and 5 (planes 0, 1)
    EXPECT_EQ(chooseRelayRank(c, 1, 0), 4u);
    EXPECT_EQ(chooseRelayRank(c, 1, 1), 5u);
    EXPECT_EQ(chooseRelayRank(c, 1, 3), 4u); // wraps past the gap
    EXPECT_EQ(chooseRelayRank(c, 1, 2), 4u); // 6, 7 missing -> wrap
}

TEST(ChooseRelay, ReturnsNoRelayWhenHostFullyDead)
{
    net::Cluster c = mpft(2);
    std::vector<bool> dead(c.gpus.size(), false);
    for (std::size_t p = 0; p < 4; ++p)
        dead[1 * 4 + p] = true;
    EXPECT_EQ(chooseRelayRank(c, 1, 0, &dead), kNoRelay);
    EXPECT_EQ(chooseRelayRank(c, 0, 0, &dead), 0u); // host 0 fine
}

TEST(DeepEpFault, DeadExpertRankDropsDeliveries)
{
    net::Cluster c = mpft(4);
    EpWorkload w = smallWorkload();
    std::vector<bool> dead(c.gpus.size(), false);
    dead[5] = true;
    EpFaultModel fm;
    fm.deadRanks = &dead;

    EpResult r = simulateDeepEp(c, w, fm);
    EXPECT_GT(r.droppedDeliveries, 0.0);
    EXPECT_GT(r.dispatchSeconds, 0.0);
    EXPECT_GT(r.combineSeconds, 0.0);
}

TEST(DeepEpFault, DeadRelayForcesCrossPlaneFallback)
{
    net::Cluster c = mpft(4);
    EpWorkload w = smallWorkload();
    std::vector<bool> dead(c.gpus.size(), false);
    dead[2 * 4 + 0] = true; // host 2's plane-0 GPU
    EpFaultModel fm;
    fm.deadRanks = &dead;

    EpResult r = simulateDeepEp(c, w, fm);
    // Plane-0 senders on other hosts must relay host-2 traffic
    // through another plane.
    EXPECT_GT(r.relayFallbacks, 0u);
    EXPECT_EQ(r.stalledTransfers, 0u);
}

TEST(DeepEpFault, DegradedLinkAddsRetryPenalty)
{
    net::Cluster healthy_cluster = mpft(2);
    EpWorkload w = smallWorkload();
    EpResult healthy = simulateDeepEp(healthy_cluster, w);

    net::Cluster c = mpft(2);
    // Degrade every GPU NIC uplink so inter-host transfers see a
    // link below the degradedThreshold.
    for (net::EdgeId e = 0; e < c.graph.edgeCount(); ++e) {
        const net::Edge &edge = c.graph.edge(e);
        if (c.graph.node(edge.from).kind == net::NodeKind::GPU &&
            c.graph.node(edge.to).kind == net::NodeKind::LEAF)
            c.degradeLink(edge.from, edge.to, 0.5);
    }
    EpResult degraded = simulateDeepEp(c, w, EpFaultModel{});

    EXPECT_GT(degraded.dispatchRetrySeconds, 0.0);
    EXPECT_GT(degraded.dispatchSeconds, healthy.dispatchSeconds);
    EXPECT_GT(degraded.combineSeconds, healthy.combineSeconds);
}

} // namespace
} // namespace dsv3::ep
