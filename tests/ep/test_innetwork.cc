/**
 * @file
 * Tests for the Sec 6.5 in-network computation model.
 */

#include <gtest/gtest.h>

#include "ep/innetwork.hh"

namespace dsv3::ep {
namespace {

TEST(InNetwork, UnicastScalesWithNodesTouched)
{
    InNetworkParams p;
    p.meanNodesTouched = 4.0;
    auto r4 = evaluateInNetwork(NetworkCapability::UNICAST, p);
    p.meanNodesTouched = 2.0;
    auto r2 = evaluateInNetwork(NetworkCapability::UNICAST, p);
    EXPECT_NEAR(r4.totalTimePerToken, 2.0 * r2.totalTimePerToken,
                1e-12);
}

TEST(InNetwork, MulticastRemovesDispatchFanout)
{
    InNetworkParams p;
    auto uni = evaluateInNetwork(NetworkCapability::UNICAST, p);
    auto mc = evaluateInNetwork(
        NetworkCapability::MULTICAST_DISPATCH, p);
    EXPECT_NEAR(mc.dispatchBytesPerToken,
                uni.dispatchBytesPerToken / p.meanNodesTouched,
                1e-9);
    EXPECT_DOUBLE_EQ(mc.combineBytesPerToken,
                     uni.combineBytesPerToken);
}

TEST(InNetwork, ReduceRemovesCombineFanin)
{
    InNetworkParams p;
    auto mc = evaluateInNetwork(
        NetworkCapability::MULTICAST_DISPATCH, p);
    auto full = evaluateInNetwork(
        NetworkCapability::MULTICAST_AND_REDUCE, p);
    EXPECT_NEAR(full.combineBytesPerToken,
                mc.combineBytesPerToken / p.meanNodesTouched, 1e-9);
}

TEST(InNetwork, CapabilityOrderingMonotone)
{
    InNetworkParams p;
    auto a = evaluateInNetwork(NetworkCapability::UNICAST, p);
    auto b = evaluateInNetwork(
        NetworkCapability::MULTICAST_DISPATCH, p);
    auto c = evaluateInNetwork(
        NetworkCapability::MULTICAST_AND_REDUCE, p);
    EXPECT_GT(a.totalTimePerToken, b.totalTimePerToken);
    EXPECT_GT(b.totalTimePerToken, c.totalTimePerToken);
}

TEST(InNetwork, CompressionStacksMultiplicatively)
{
    InNetworkParams p;
    auto plain = evaluateInNetwork(
        NetworkCapability::MULTICAST_AND_REDUCE, p);
    p.compressionFactor = 0.5;
    auto packed = evaluateInNetwork(
        NetworkCapability::MULTICAST_AND_REDUCE, p);
    EXPECT_NEAR(packed.totalTimePerToken,
                plain.totalTimePerToken / 2.0, 1e-12);
}

TEST(InNetwork, CombineIsTwiceDispatchBytes)
{
    // BF16 combine vs FP8 dispatch at the same fan factor.
    InNetworkParams p;
    auto r = evaluateInNetwork(NetworkCapability::UNICAST, p);
    EXPECT_NEAR(r.combineBytesPerToken / r.dispatchBytesPerToken,
                2.0, 1e-9);
}

TEST(InNetwork, Names)
{
    EXPECT_STREQ(networkCapabilityName(NetworkCapability::UNICAST),
                 "unicast (today)");
}

} // namespace
} // namespace dsv3::ep
