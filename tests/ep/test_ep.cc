/**
 * @file
 * Tests for the DeepEP dispatch/combine simulation and the EP
 * speed-limit model (Secs 2.3.2 and 4.3).
 */

#include <gtest/gtest.h>

#include "ep/deepep.hh"
#include "ep/speed_limit.hh"

namespace dsv3::ep {
namespace {

net::Cluster
mpft(std::size_t hosts)
{
    net::ClusterConfig cc;
    cc.fabric = net::Fabric::MPFT;
    cc.hosts = hosts;
    return buildCluster(cc);
}

EpWorkload
v3Workload(std::size_t tokens = 512)
{
    EpWorkload w;
    w.tokensPerGpu = tokens;
    w.gate.experts = 256;
    w.gate.topK = 8;
    w.gate.groups = 8;
    w.gate.topKGroups = 4;
    return w;
}

TEST(SpeedLimit, PaperH800Numbers)
{
    // Sec 2.3.2: 120.96 us per stage, 241.92 us per layer,
    // 14.76 ms TPOT, ~67 tokens/s.
    SpeedLimit s = epSpeedLimit(SpeedLimitParams{});
    EXPECT_NEAR(s.commTimePerStage, 120.96e-6, 0.01e-6);
    EXPECT_NEAR(s.timePerLayer, 241.92e-6, 0.02e-6);
    EXPECT_NEAR(s.tpotSeconds, 14.757e-3, 0.01e-3);
    EXPECT_NEAR(s.tokensPerSecond, 67.0, 1.5);
}

TEST(SpeedLimit, PaperNvl72Numbers)
{
    // Sec 2.3.2: 6.72 us per stage, ~0.82 ms TPOT, ~1200 tok/s.
    SpeedLimitParams p;
    p.bandwidthBytesPerSec = 900e9;
    SpeedLimit s = epSpeedLimit(p);
    EXPECT_NEAR(s.commTimePerStage, 6.72e-6, 0.01e-6);
    EXPECT_NEAR(s.tpotSeconds, 0.82e-3, 0.01e-3);
    EXPECT_NEAR(s.tokensPerSecond, 1200.0, 30.0);
}

TEST(SpeedLimit, ScalesInverselyWithBandwidth)
{
    SpeedLimitParams p;
    SpeedLimit base = epSpeedLimit(p);
    p.bandwidthBytesPerSec *= 2.0;
    SpeedLimit fast = epSpeedLimit(p);
    EXPECT_NEAR(fast.tpotSeconds, base.tpotSeconds / 2.0, 1e-9);
}

TEST(SpeedLimit, NodeLimitedIbTimeLinearInM)
{
    double t1 = nodeLimitedIbTime(1.0, 7168, 1.0, 50e9);
    double t4 = nodeLimitedIbTime(4.0, 7168, 1.0, 50e9);
    EXPECT_NEAR(t4, 4.0 * t1, 1e-15);
}

TEST(DeepEp, DispatchTimePositiveAndFinite)
{
    net::Cluster c = mpft(2);
    EpResult r = simulateDeepEp(c, v3Workload());
    EXPECT_GT(r.dispatchSeconds, 0.0);
    EXPECT_GT(r.combineSeconds, 0.0);
    EXPECT_GT(r.dispatchNicBytesPerGpu, 0.0);
}

TEST(DeepEp, NodesTouchedBoundedByHostsAndGroups)
{
    net::Cluster c = mpft(2);
    EpResult r = simulateDeepEp(c, v3Workload());
    EXPECT_LE(r.meanNodesTouched, 2.0);
    EXPECT_GE(r.meanNodesTouched, 1.0);
}

TEST(DeepEp, NicBandwidthSaturatesAtScale)
{
    // 8 hosts (64 GPUs): the EP all-to-all should drive the NIC into
    // its effective-bandwidth region (Figure 7's plateau).
    net::Cluster c = mpft(8);
    EpResult r = simulateDeepEp(c, v3Workload(256));
    EXPECT_GT(r.combineGBsPerGpu, 30e9);
    EXPECT_LE(r.combineGBsPerGpu, 41e9);
    EXPECT_GT(r.dispatchGBsPerGpu, 25e9);
}

TEST(DeepEp, CombineCarriesTwiceTheBytes)
{
    // BF16 combine vs FP8 dispatch: ~2x bytes per token (modulo the
    // dispatch scale overhead).
    net::Cluster c = mpft(4);
    EpResult r = simulateDeepEp(c, v3Workload(256));
    // The worst-loaded NIC can differ between the two directions,
    // so allow slack around the per-token byte ratio 2/1.03125.
    double ratio = r.combineNicBytesPerGpu / r.dispatchNicBytesPerGpu;
    EXPECT_GT(ratio, 1.85);
    EXPECT_LT(ratio, 2.05);
}

TEST(DeepEp, NodeLimitReducesNicTraffic)
{
    net::Cluster c = mpft(8);
    EpWorkload limited = v3Workload(256);
    EpWorkload open = limited;
    open.gate.topKGroups = 8;
    EpResult r_lim = simulateDeepEp(c, limited);
    EpResult r_open = simulateDeepEp(c, open);
    EXPECT_LT(r_lim.meanNodesTouched, r_open.meanNodesTouched);
    EXPECT_LT(r_lim.dispatchNicBytesPerGpu,
              r_open.dispatchNicBytesPerGpu);
}

TEST(DeepEp, SingleHostUsesNoNic)
{
    net::Cluster c = mpft(1);
    EpWorkload w = v3Workload(256);
    EpResult r = simulateDeepEp(c, w);
    EXPECT_DOUBLE_EQ(r.dispatchNicBytesPerGpu, 0.0);
    EXPECT_DOUBLE_EQ(r.meanNodesTouched, 1.0);
    // NVLink still carries intra-host traffic.
    EXPECT_GT(r.dispatchSeconds, 0.0);
}

TEST(DeepEp, DeterministicForSeed)
{
    net::Cluster c = mpft(2);
    EpWorkload w = v3Workload(128);
    EpResult a = simulateDeepEp(c, w);
    EpResult b = simulateDeepEp(c, w);
    EXPECT_DOUBLE_EQ(a.dispatchSeconds, b.dispatchSeconds);
    EXPECT_DOUBLE_EQ(a.meanNodesTouched, b.meanNodesTouched);
}

TEST(DeepEpDeath, ExpertsMustDivideGpus)
{
    net::Cluster c = mpft(3); // 24 GPUs; 256 % 24 != 0
    EXPECT_DEATH(simulateDeepEp(c, v3Workload(16)), "divide");
}

/** Figure 7 sweep: per-GPU bandwidth in band at every scale. */
class DeepEpScaleTest : public ::testing::TestWithParam<std::size_t>
{};

TEST_P(DeepEpScaleTest, BandwidthInBand)
{
    net::Cluster c = mpft(GetParam());
    EpResult r = simulateDeepEp(c, v3Workload(128));
    EXPECT_GT(r.combineGBsPerGpu, 20e9);
    EXPECT_LE(r.combineGBsPerGpu, 41e9);
    EXPECT_GE(r.meanGpusTouched, r.meanNodesTouched);
}

INSTANTIATE_TEST_SUITE_P(Hosts, DeepEpScaleTest,
                         ::testing::Values(2, 4, 8));

} // namespace
} // namespace dsv3::ep
