/**
 * @file
 * Tests for the Sec 4.4 EP transport cost model.
 */

#include <gtest/gtest.h>

#include "ep/offload.hh"

namespace dsv3::ep {
namespace {

TransportParams
base()
{
    TransportParams p;
    p.computeTime = 100e-6;
    p.meanNodesTouched = 3.5;
    p.meanGpusTouched = 7.0;
    p.ibTimePerNodeCopy = 30e-6;
    return p;
}

TEST(Offload, SmForwardingSlowsCompute)
{
    auto r = evaluateTransport(CommTransport::SM_FORWARDING, base());
    // 132/112 compute stretch.
    EXPECT_NEAR(r.effectiveComputeTime, 100e-6 * 132.0 / 112.0,
                1e-9);
    EXPECT_NEAR(r.ibTime, 3.5 * 30e-6, 1e-12);
}

TEST(Offload, RdmaOnlyKeepsComputeButLosesDedup)
{
    auto r = evaluateTransport(CommTransport::RDMA_ONLY, base());
    EXPECT_DOUBLE_EQ(r.effectiveComputeTime, 100e-6);
    EXPECT_NEAR(r.ibTime, 7.0 * 30e-6, 1e-12);
}

TEST(Offload, HardwareOffloadBestOfBoth)
{
    auto hw = evaluateTransport(CommTransport::HARDWARE_OFFLOAD,
                                base());
    auto sm = evaluateTransport(CommTransport::SM_FORWARDING, base());
    auto rdma = evaluateTransport(CommTransport::RDMA_ONLY, base());
    EXPECT_LE(hw.layerTime, sm.layerTime);
    EXPECT_LE(hw.layerTime, rdma.layerTime);
    EXPECT_GE(hw.computeEfficiency, sm.computeEfficiency);
    EXPECT_GE(hw.computeEfficiency, rdma.computeEfficiency);
}

TEST(Offload, LayerTimeIsMaxOfComputeAndComm)
{
    TransportParams p = base();
    p.ibTimePerNodeCopy = 1e-6; // comm negligible
    auto r = evaluateTransport(CommTransport::SM_FORWARDING, p);
    EXPECT_DOUBLE_EQ(r.layerTime, r.effectiveComputeTime);

    p.ibTimePerNodeCopy = 1e-3; // comm dominates
    r = evaluateTransport(CommTransport::SM_FORWARDING, p);
    EXPECT_DOUBLE_EQ(r.layerTime, r.ibTime);
}

TEST(Offload, EfficiencyBounded)
{
    for (CommTransport tr :
         {CommTransport::SM_FORWARDING, CommTransport::RDMA_ONLY,
          CommTransport::HARDWARE_OFFLOAD}) {
        auto r = evaluateTransport(tr, base());
        EXPECT_GT(r.computeEfficiency, 0.0);
        EXPECT_LE(r.computeEfficiency, 1.0);
    }
}

TEST(Offload, RdmaWinsWhenTrafficIsLocal)
{
    // With almost-local routing (M ~= GPUs touched ~= 1), the dedup
    // advantage vanishes and RDMA-only's full-SM compute wins.
    TransportParams p = base();
    p.meanNodesTouched = 1.0;
    p.meanGpusTouched = 1.0;
    auto sm = evaluateTransport(CommTransport::SM_FORWARDING, p);
    auto rdma = evaluateTransport(CommTransport::RDMA_ONLY, p);
    EXPECT_LT(rdma.layerTime, sm.layerTime);
}

TEST(Offload, Names)
{
    EXPECT_STREQ(commTransportName(CommTransport::RDMA_ONLY),
                 "RDMA only (inference)");
}

} // namespace
} // namespace dsv3::ep
