/**
 * @file
 * Tests for the process-level route cache: fingerprint keying,
 * warm-hit identity, incremental (journal-derived) invalidation,
 * repair round-trips, the degrade-does-not-invalidate guarantee, and
 * byte-equivalence of assignPaths() with the cache on, warm, or off.
 */

#include <algorithm>
#include <gtest/gtest.h>

#include "net/cluster.hh"
#include "net/flow.hh"
#include "net/graph.hh"
#include "net/route_cache.hh"
#include "obs/registry.hh"

namespace dsv3::net {
namespace {

std::uint64_t
counterValue(const char *name)
{
    return obs::Registry::global().counter(name).value();
}

/** Fresh enumeration in the cache's canonical order. */
std::vector<Path>
canonicalPaths(const Graph &g, NodeId src, NodeId dst,
               std::size_t max_paths = 512)
{
    auto found = shortestPaths(g, src, dst, max_paths);
    std::sort(found.begin(), found.end());
    return found;
}

/** Diamond: s -> {a, b} -> t, two equal-cost paths. */
Graph
diamond()
{
    Graph g;
    NodeId s = g.addNode(NodeKind::GPU, "s");
    NodeId a = g.addNode(NodeKind::LEAF, "a");
    NodeId b = g.addNode(NodeKind::LEAF, "b");
    NodeId t = g.addNode(NodeKind::GPU, "t");
    g.addEdge(s, a, 10.0, 1e-6);
    g.addEdge(a, t, 10.0, 1e-6);
    g.addEdge(s, b, 10.0, 1e-6);
    g.addEdge(b, t, 10.0, 1e-6);
    return g;
}

class RouteCacheTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        RouteCache::setEnabled(true);
        RouteCache::global().clear();
    }
    void
    TearDown() override
    {
        RouteCache::global().clear();
        RouteCache::setEnabled(true);
    }
};

TEST_F(RouteCacheTest, WarmHitReturnsSameSet)
{
    Graph g = diamond();
    auto first = RouteCache::global().paths(g, 0, 3);
    ASSERT_EQ(first->paths.size(), 2u);
    EXPECT_TRUE(first->complete);
    EXPECT_EQ(first->paths, canonicalPaths(g, 0, 3));

    std::uint64_t hits = counterValue("net.route_cache.hits");
    auto second = RouteCache::global().paths(g, 0, 3);
    // Same immutable object, not a re-enumeration.
    EXPECT_EQ(first.get(), second.get());
    EXPECT_EQ(counterValue("net.route_cache.hits"), hits + 1);
}

TEST_F(RouteCacheTest, StructurallyIdenticalGraphsShareEntries)
{
    Graph g1 = diamond();
    Graph g2 = diamond();
    EXPECT_EQ(g1.fingerprint(), g2.fingerprint());
    auto p1 = RouteCache::global().paths(g1, 0, 3);
    auto p2 = RouteCache::global().paths(g2, 0, 3);
    EXPECT_EQ(p1.get(), p2.get());
}

TEST_F(RouteCacheTest, EdgeDownDerivesFilteredSet)
{
    Graph g = diamond();
    auto healthy = RouteCache::global().paths(g, 0, 3);
    ASSERT_EQ(healthy->paths.size(), 2u);

    std::uint64_t derived = counterValue("net.route_cache.derived");
    g.setEdgeCapacity(0, 0.0); // s->a down
    auto degraded = RouteCache::global().paths(g, 0, 3);
    // Derived by filtering the healthy set, not by BFS; contents are
    // exactly what fresh enumeration on the degraded graph returns.
    EXPECT_EQ(counterValue("net.route_cache.derived"), derived + 1);
    ASSERT_EQ(degraded->paths.size(), 1u);
    EXPECT_EQ(degraded->paths, canonicalPaths(g, 0, 3));
    // The healthy entry is untouched (old fingerprint still keyed).
    EXPECT_EQ(healthy->paths.size(), 2u);
}

TEST_F(RouteCacheTest, EmptySurvivorsFallBackToBfs)
{
    // s -> a -> t (2 hops) plus s -> b -> c -> t (3 hops): the
    // complete shortest set is just the 2-hop path, so downing a->t
    // leaves no survivors and the lookup must re-run BFS to find the
    // now-shortest 3-hop route.
    Graph g;
    NodeId s = g.addNode(NodeKind::GPU, "s");
    NodeId a = g.addNode(NodeKind::LEAF, "a");
    NodeId b = g.addNode(NodeKind::LEAF, "b");
    NodeId c = g.addNode(NodeKind::LEAF, "c");
    NodeId t = g.addNode(NodeKind::GPU, "t");
    g.addEdge(s, a, 10.0, 1e-6);
    EdgeId at = g.addEdge(a, t, 10.0, 1e-6);
    g.addEdge(s, b, 10.0, 1e-6);
    g.addEdge(b, c, 10.0, 1e-6);
    g.addEdge(c, t, 10.0, 1e-6);

    auto healthy = RouteCache::global().paths(g, s, t);
    ASSERT_EQ(healthy->paths.size(), 1u);
    EXPECT_EQ(healthy->paths[0].size(), 2u);

    g.setEdgeCapacity(at, 0.0);
    auto rerouted = RouteCache::global().paths(g, s, t);
    ASSERT_EQ(rerouted->paths.size(), 1u);
    EXPECT_EQ(rerouted->paths[0].size(), 3u);
    EXPECT_EQ(rerouted->paths, canonicalPaths(g, s, t));
}

TEST_F(RouteCacheTest, RepairReturnsByteIdenticalToColdCache)
{
    // down -> repair must land back on the original cached entry:
    // the downed-edge fold is self-inverse, so the fingerprint
    // round-trips, and the path set is pointer-identical -- trivially
    // byte-identical to what a cold cache would re-enumerate.
    Graph g = diamond();
    auto before = RouteCache::global().paths(g, 0, 3);
    const std::uint64_t fp = g.fingerprint();

    g.setEdgeCapacity(0, 0.0);
    (void)RouteCache::global().paths(g, 0, 3);
    g.setEdgeCapacity(0, 10.0); // repair
    EXPECT_EQ(g.fingerprint(), fp);

    auto after = RouteCache::global().paths(g, 0, 3);
    EXPECT_EQ(before.get(), after.get());

    // And against a genuinely cold cache: same bytes.
    RouteCache::global().clear();
    auto cold = RouteCache::global().paths(g, 0, 3);
    EXPECT_EQ(cold->paths, after->paths);
}

TEST_F(RouteCacheTest, DegradedCapacityDoesNotInvalidate)
{
    // Shortest-path keying depends on up/down only: degrading a link
    // to any non-zero capacity must not move the fingerprint, must
    // not journal an invalidation, and must keep serving the exact
    // cached object.
    Graph g = diamond();
    auto before = RouteCache::global().paths(g, 0, 3);
    const std::uint64_t fp = g.fingerprint();
    const std::uint64_t invalidations =
        counterValue("net.route_cache.invalidations");

    g.setEdgeCapacity(0, 1e-3); // degraded but alive
    EXPECT_EQ(g.fingerprint(), fp);
    auto during = RouteCache::global().paths(g, 0, 3);
    EXPECT_EQ(before.get(), during.get());
    EXPECT_EQ(counterValue("net.route_cache.invalidations"),
              invalidations);
}

TEST_F(RouteCacheTest, TruncatedEnumerationIsDeterministic)
{
    // 3 parallel relays: 3 equal-cost paths; bound at 2. Truncation
    // happens in DFS order before the canonical sort, so cached and
    // uncached answers must agree bound-for-bound, and the truncation
    // counter must tick.
    Graph g;
    NodeId s = g.addNode(NodeKind::GPU, "s");
    NodeId t = g.addNode(NodeKind::GPU, "t");
    for (int i = 0; i < 3; ++i) {
        NodeId m = g.addNode(NodeKind::LEAF, "m" + std::to_string(i));
        g.addEdge(s, m, 10.0, 1e-6);
        g.addEdge(m, t, 10.0, 1e-6);
    }

    std::uint64_t trunc = counterValue("net.graph.paths_truncated");
    auto bounded = RouteCache::global().paths(g, s, t, 2);
    EXPECT_GT(counterValue("net.graph.paths_truncated"), trunc);
    EXPECT_FALSE(bounded->complete);
    ASSERT_EQ(bounded->paths.size(), 2u);
    EXPECT_EQ(bounded->paths, canonicalPaths(g, s, t, 2));
    // Warm repeat with the same bound: cached, identical.
    auto again = RouteCache::global().paths(g, s, t, 2);
    EXPECT_EQ(bounded.get(), again.get());

    // A different bound cannot be served from the truncated entry.
    auto full = RouteCache::global().paths(g, s, t, 512);
    EXPECT_TRUE(full->complete);
    EXPECT_EQ(full->paths.size(), 3u);
    EXPECT_EQ(full->paths, canonicalPaths(g, s, t, 512));
}

TEST_F(RouteCacheTest, AssignPathsMatchesCacheOff)
{
    // All three policies, cold cache, warm cache, and cache off must
    // populate byte-identical paths/weights.
    Cluster c = buildCluster([] {
        ClusterConfig cc;
        cc.fabric = Fabric::MPFT;
        cc.hosts = 4;
        return cc;
    }());
    std::vector<Flow> base;
    std::uint64_t qp = 0;
    for (std::size_t s = 0; s < c.gpus.size(); s += 3)
        for (std::size_t d = 0; d < c.gpus.size(); d += 5) {
            if (s == d)
                continue;
            Flow f;
            f.src = c.gpus[s];
            f.dst = c.gpus[d];
            f.bytes = 1e6;
            f.qp = qp++;
            base.push_back(f);
        }

    for (RoutePolicy policy :
         {RoutePolicy::ECMP, RoutePolicy::ADAPTIVE,
          RoutePolicy::STATIC}) {
        RouteCache::global().clear();
        auto cold = base;
        assignPaths(c.graph, cold, policy, 7);
        auto warm = base;
        assignPaths(c.graph, warm, policy, 7);
        RouteCache::setEnabled(false);
        auto off = base;
        assignPaths(c.graph, off, policy, 7);
        RouteCache::setEnabled(true);

        for (std::size_t i = 0; i < base.size(); ++i) {
            EXPECT_EQ(cold[i].paths, off[i].paths);
            EXPECT_EQ(cold[i].weights, off[i].weights);
            EXPECT_EQ(warm[i].paths, off[i].paths);
            EXPECT_EQ(warm[i].weights, off[i].weights);
        }
    }
}

TEST_F(RouteCacheTest, StaticKthPathStableUnderCacheReuse)
{
    // Regression for the STATIC policy's "k-th path" semantics: the
    // greedy table walks candidates in canonical order, so the path
    // flow k lands on must not depend on whether the candidate set
    // came from a cold cache, a warm cache, or per-call enumeration.
    Cluster c = buildCluster([] {
        ClusterConfig cc;
        cc.fabric = Fabric::MRFT;
        cc.hosts = 4;
        return cc;
    }());
    std::vector<Flow> base;
    for (std::uint64_t k = 0; k < 8; ++k) {
        Flow f;
        f.src = c.gpus[0];
        f.dst = c.gpus[c.gpus.size() - 1];
        f.bytes = 1e6;
        f.qp = k;
        base.push_back(f);
    }

    auto kth = [&](std::vector<Flow> flows) {
        assignPaths(c.graph, flows, RoutePolicy::STATIC);
        std::vector<Path> picks;
        for (const Flow &f : flows)
            picks.push_back(f.paths.at(0));
        return picks;
    };

    RouteCache::global().clear();
    auto cold = kth(base);
    auto warm = kth(base); // second call reuses the cached sets
    RouteCache::setEnabled(false);
    auto off = kth(base);
    RouteCache::setEnabled(true);

    EXPECT_EQ(cold, off);
    EXPECT_EQ(warm, off);
    // The greedy spreader must actually use distinct paths for
    // same-pair flows (k-th path, not always the first).
    EXPECT_NE(cold.front(), cold.back());
}

TEST_F(RouteCacheTest, FingerprintTracksStructureNotCapacity)
{
    Graph g1 = diamond();
    Graph g2 = diamond();
    g2.addEdge(1, 2, 5.0, 1e-6); // extra a->b edge
    EXPECT_NE(g1.fingerprint(), g2.fingerprint());

    const std::uint64_t fp = g1.fingerprint();
    g1.setEdgeCapacity(2, 4.2); // capacity change, still up
    EXPECT_EQ(g1.fingerprint(), fp);
    g1.setEdgeCapacity(2, 0.0); // down: moves
    EXPECT_NE(g1.fingerprint(), fp);
    g1.setEdgeCapacity(2, 9.9); // any repair value: moves back
    EXPECT_EQ(g1.fingerprint(), fp);
}

} // namespace
} // namespace dsv3::net
