/**
 * @file
 * Tests for the Table 3 topology counts and cost model.
 */

#include <gtest/gtest.h>

#include "net/cost.hh"

namespace dsv3::net {
namespace {

TEST(Cost, Ft2PaperCounts)
{
    TopologyCounts tc = countFatTree2(64, 2048);
    EXPECT_EQ(tc.endpoints, 2048u);
    EXPECT_EQ(tc.switches, 96u);
    EXPECT_EQ(tc.links, 2048u);
}

TEST(Cost, MpftPaperCounts)
{
    TopologyCounts tc = *countMultiPlaneFatTree(64, 8, 16384);
    EXPECT_EQ(tc.endpoints, 16384u);
    EXPECT_EQ(tc.switches, 768u);
    EXPECT_EQ(tc.links, 16384u);
}

TEST(Cost, Ft3PaperCounts)
{
    TopologyCounts tc = countFatTree3(64, 65536);
    EXPECT_EQ(tc.endpoints, 65536u);
    EXPECT_EQ(tc.switches, 5120u);
    EXPECT_EQ(tc.links, 131072u);
}

TEST(Cost, SlimFlyPaperCounts)
{
    TopologyCounts tc = countSlimFly(28);
    EXPECT_EQ(tc.endpoints, 32928u);
    EXPECT_EQ(tc.switches, 1568u);
    EXPECT_EQ(tc.links, 32928u);
}

TEST(Cost, DragonflyPaperCounts)
{
    TopologyCounts tc = countDragonfly(16, 32, 16, 511);
    EXPECT_EQ(tc.endpoints, 261632u);
    EXPECT_EQ(tc.switches, 16352u);
    EXPECT_EQ(tc.links, 384272u);
}

TEST(Cost, PaperCostPerEndpoint)
{
    // Table 3 cost/endpoint in k$: 4.39, 4.39, 7.5, 4.4, 5.8.
    EXPECT_NEAR(costPerEndpoint(countFatTree2(64, 2048)) / 1e3, 4.39,
                0.05);
    EXPECT_NEAR(
        costPerEndpoint(*countMultiPlaneFatTree(64, 8, 16384)) / 1e3,
        4.39, 0.05);
    EXPECT_NEAR(costPerEndpoint(countFatTree3(64, 65536)) / 1e3, 7.5,
                0.1);
    EXPECT_NEAR(costPerEndpoint(countSlimFly(28)) / 1e3, 4.4, 0.1);
    EXPECT_NEAR(costPerEndpoint(countDragonfly(16, 32, 16, 511)) / 1e3,
                5.8, 0.1);
}

TEST(Cost, PaperTotalCosts)
{
    // Table 3 totals in M$: 9, 72, 491, 146, 1522 (within ~2%).
    EXPECT_NEAR(totalCost(countFatTree2(64, 2048)) / 1e6, 9.0, 0.3);
    EXPECT_NEAR(totalCost(*countMultiPlaneFatTree(64, 8, 16384)) / 1e6,
                72.0, 1.5);
    EXPECT_NEAR(totalCost(countFatTree3(64, 65536)) / 1e6, 491.0,
                10.0);
    EXPECT_NEAR(totalCost(countSlimFly(28)) / 1e6, 146.0, 3.0);
    EXPECT_NEAR(totalCost(countDragonfly(16, 32, 16, 511)) / 1e6,
                1522.0, 30.0);
}

TEST(Cost, MpftIsEightIndependentFt2)
{
    TopologyCounts ft2 = countFatTree2(64, 2048);
    TopologyCounts mpft = *countMultiPlaneFatTree(64, 8, 16384);
    EXPECT_EQ(mpft.switches, 8 * ft2.switches);
    EXPECT_EQ(mpft.links, 8 * ft2.links);
    EXPECT_DOUBLE_EQ(costPerEndpoint(mpft), costPerEndpoint(ft2));
}

TEST(Cost, MpftRejectsNonDivisibleEndpoints)
{
    // Satellite (b): infeasible plane configs report nullopt instead
    // of asserting, so sweeps can skip them.
    EXPECT_FALSE(countMultiPlaneFatTree(64, 8, 16383).has_value());
    EXPECT_FALSE(countMultiPlaneFatTree(64, 3, 16384).has_value());
    EXPECT_TRUE(countMultiPlaneFatTree(64, 8, 16384).has_value());
}

TEST(Cost, MpftRejectsOverCapacityPlanes)
{
    // Each radix-64 plane is a two-level fat-tree capped at
    // 64 * 32 = 2048 endpoints.
    EXPECT_TRUE(countMultiPlaneFatTree(64, 8, 8 * 2048).has_value());
    EXPECT_FALSE(
        countMultiPlaneFatTree(64, 8, 8 * 2048 + 8).has_value());
    EXPECT_FALSE(countMultiPlaneFatTree(64, 1, 2049).has_value());
}

TEST(Cost, Ft2MaxScale)
{
    // radix 64 FT2 tops out at 64*32 = 2048 endpoints.
    EXPECT_NO_THROW(countFatTree2(64, 2048));
    EXPECT_DEATH(countFatTree2(64, 2049), "tops out");
}

TEST(Cost, Ft3CheaperPerPortAtSmallerScale)
{
    // FT3 pays 5 ports + 2 optical cables per endpoint regardless of
    // fill; FT2 always wins on cost per endpoint.
    EXPECT_LT(costPerEndpoint(countFatTree2(64, 1024)),
              costPerEndpoint(countFatTree3(64, 1024)));
}

TEST(Cost, SlimFlyDeltaHandling)
{
    // q = 4w + delta: q=5 (delta 1) -> k' = 7; q=7 (delta -1) -> 11.
    EXPECT_EQ(countSlimFly(5).links, 2u * 25u * 7u / 2u);
    EXPECT_EQ(countSlimFly(7).links, 2u * 49u * 11u / 2u);
    EXPECT_DEATH(countSlimFly(6), "delta");
}

TEST(Cost, PortsPerEndpointShape)
{
    // FT2: 3 ports/endpoint; FT3: 5 ports/endpoint; SF: 3.
    EXPECT_DOUBLE_EQ(countFatTree2(64, 2048).portsPerEndpoint(), 3.0);
    EXPECT_DOUBLE_EQ(countFatTree3(64, 65536).portsPerEndpoint(), 5.0);
    EXPECT_DOUBLE_EQ(countSlimFly(28).portsPerEndpoint(), 3.0);
}

TEST(Cost, PartialFt2Rounding)
{
    // 100 endpoints on radix-32 switches: down = 16, so 7 leaves and
    // ceil(7/2) = 4 spines; links = leaves * down.
    TopologyCounts tc = countFatTree2(32, 100);
    EXPECT_EQ(tc.switches, 7u + 4u);
    EXPECT_EQ(tc.links, 7u * 16u);
}

} // namespace
} // namespace dsv3::net
