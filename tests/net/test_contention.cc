/**
 * @file
 * Tests for the Sec 4.5 PCIe contention model.
 */

#include <gtest/gtest.h>

#include "net/contention.hh"

namespace dsv3::net {
namespace {

ContentionScenario
base()
{
    ContentionScenario s;
    s.pcieBytesPerSec = 64e9;
    s.epBytesPerSec = 40e9;
    s.epBytes = 40e6;
    s.kvBytes = 320e6;
    return s;
}

TEST(Contention, FairShareSlowsEp)
{
    auto r = evaluateContention(PcieArbitration::FAIR_SHARE, base());
    // EP demand (40 GB/s) exceeds the fair half (32 GB/s).
    EXPECT_GT(r.epSlowdown, 1.2);
}

TEST(Contention, PrioritySavesEp)
{
    auto r = evaluateContention(PcieArbitration::EP_PRIORITY, base());
    EXPECT_NEAR(r.epSlowdown, 1.0, 1e-9);
    // KV still finishes, later than uncontended.
    EXPECT_GT(r.kvTime, 320e6 / 64e9);
}

TEST(Contention, IoDieDecouplesStreams)
{
    auto r = evaluateContention(PcieArbitration::IO_DIE, base());
    EXPECT_NEAR(r.epTime, 40e6 / 40e9, 1e-12);
    EXPECT_NEAR(r.kvTime, 320e6 / 64e9, 1e-12);
    EXPECT_NEAR(r.epSlowdown, 1.0, 1e-9);
}

TEST(Contention, NoKvTrafficNoSlowdown)
{
    ContentionScenario s = base();
    s.kvBytes = 0.0;
    for (PcieArbitration a :
         {PcieArbitration::FAIR_SHARE, PcieArbitration::EP_PRIORITY,
          PcieArbitration::IO_DIE}) {
        auto r = evaluateContention(a, s);
        EXPECT_NEAR(r.epSlowdown, 1.0, 1e-9);
    }
}

TEST(Contention, SmallEpDemandUnaffectedByFairShare)
{
    ContentionScenario s = base();
    s.epBytesPerSec = 20e9; // below the 32 GB/s fair half
    auto r = evaluateContention(PcieArbitration::FAIR_SHARE, s);
    EXPECT_NEAR(r.epSlowdown, 1.0, 1e-9);
}

TEST(Contention, KvFinishFasterAfterEpDone)
{
    // Once EP completes, KV ramps to full PCIe bandwidth; total KV
    // time is below what the shared rate alone would predict.
    auto fair = evaluateContention(PcieArbitration::FAIR_SHARE,
                                   base());
    double kv_shared_only = 320e6 / (64e9 - 32e9);
    EXPECT_LT(fair.kvTime, kv_shared_only);
}

TEST(Contention, OrderingOfPolicies)
{
    auto fair = evaluateContention(PcieArbitration::FAIR_SHARE,
                                   base());
    auto prio = evaluateContention(PcieArbitration::EP_PRIORITY,
                                   base());
    auto iodie = evaluateContention(PcieArbitration::IO_DIE, base());
    EXPECT_GE(fair.epTime, prio.epTime);
    EXPECT_GE(prio.epTime, iodie.epTime - 1e-12);
    // I/O die gives KV the whole PCIe link: fastest KV.
    EXPECT_LE(iodie.kvTime, fair.kvTime);
    EXPECT_LE(iodie.kvTime, prio.kvTime);
}

TEST(ContentionDeath, RejectsZeroEp)
{
    ContentionScenario s = base();
    s.epBytes = 0.0;
    EXPECT_DEATH(
        evaluateContention(PcieArbitration::FAIR_SHARE, s), "");
}

} // namespace
} // namespace dsv3::net
