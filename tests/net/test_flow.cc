/**
 * @file
 * Tests for routing-policy path assignment and max-min fair flow
 * simulation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "net/flow.hh"

namespace dsv3::net {
namespace {

/** Two-leaf, two-spine leaf-spine fabric with 4 hosts. */
struct Fabric
{
    Graph g;
    NodeId host[4];
};

Fabric
makeFabric(double nic = 10.0, double trunk = 10.0)
{
    Fabric f;
    NodeId leaf0 = f.g.addNode(NodeKind::LEAF, "leaf0");
    NodeId leaf1 = f.g.addNode(NodeKind::LEAF, "leaf1");
    NodeId sp0 = f.g.addNode(NodeKind::SPINE, "sp0");
    NodeId sp1 = f.g.addNode(NodeKind::SPINE, "sp1");
    for (NodeId leaf : {leaf0, leaf1})
        for (NodeId sp : {sp0, sp1})
            f.g.addDuplex(leaf, sp, trunk, 1e-6);
    for (int i = 0; i < 4; ++i) {
        f.host[i] = f.g.addNode(NodeKind::GPU,
                                "h" + std::to_string(i));
        f.g.addDuplex(f.host[i], i < 2 ? leaf0 : leaf1, nic, 1e-6);
    }
    return f;
}

TEST(AssignPaths, EcmpPicksSinglePath)
{
    Fabric f = makeFabric();
    std::vector<Flow> flows = {{f.host[0], f.host[2], 100.0, 1, {}, {}}};
    assignPaths(f.g, flows, RoutePolicy::ECMP);
    EXPECT_EQ(flows[0].paths.size(), 1u);
    EXPECT_DOUBLE_EQ(flows[0].weights[0], 1.0);
}

TEST(AssignPaths, AdaptiveSplitsAcrossAll)
{
    Fabric f = makeFabric();
    std::vector<Flow> flows = {{f.host[0], f.host[2], 100.0, 1, {}, {}}};
    assignPaths(f.g, flows, RoutePolicy::ADAPTIVE);
    EXPECT_EQ(flows[0].paths.size(), 2u); // two spines
    EXPECT_DOUBLE_EQ(flows[0].weights[0], 0.5);
}

TEST(AssignPaths, EcmpSeedChangesSelection)
{
    Fabric f = makeFabric();
    int differs = 0;
    for (std::uint64_t qp = 0; qp < 32; ++qp) {
        std::vector<Flow> a = {{f.host[0], f.host[2], 1.0, qp, {}, {}}};
        std::vector<Flow> b = a;
        assignPaths(f.g, a, RoutePolicy::ECMP, 1);
        assignPaths(f.g, b, RoutePolicy::ECMP, 2);
        differs += a[0].paths[0] != b[0].paths[0];
    }
    EXPECT_GT(differs, 4); // different hash seeds move some flows
}

TEST(AssignPaths, StaticAvoidsConflictsGreedily)
{
    Fabric f = makeFabric();
    // Two flows from the same leaf to the other leaf: greedy static
    // must spread them over the two spines.
    std::vector<Flow> flows = {
        {f.host[0], f.host[2], 1.0, 0, {}, {}},
        {f.host[1], f.host[3], 1.0, 1, {}, {}},
    };
    assignPaths(f.g, flows, RoutePolicy::STATIC);
    // Their spine hops must differ.
    EXPECT_NE(flows[0].paths[0][1], flows[1].paths[0][1]);
}

TEST(MaxMin, SingleFlowGetsBottleneck)
{
    Fabric f = makeFabric(10.0, 4.0); // trunk narrower than NIC
    std::vector<Flow> flows = {{f.host[0], f.host[2], 1.0, 0, {}, {}}};
    assignPaths(f.g, flows, RoutePolicy::ECMP);
    auto rates = maxMinRates(f.g, flows);
    EXPECT_DOUBLE_EQ(rates[0], 4.0);
}

TEST(MaxMin, AdaptiveAggregatesPaths)
{
    Fabric f = makeFabric(10.0, 4.0);
    std::vector<Flow> flows = {{f.host[0], f.host[2], 1.0, 0, {}, {}}};
    assignPaths(f.g, flows, RoutePolicy::ADAPTIVE);
    auto rates = maxMinRates(f.g, flows);
    // Two 4.0 trunks exceed the 10.0 NIC? 2x4 = 8 < 10 -> rate 8.
    EXPECT_DOUBLE_EQ(rates[0], 8.0);
}

TEST(MaxMin, FairShareOnSharedLink)
{
    Fabric f = makeFabric();
    // Both flows forced on the same NIC edge: host0 sends to 2 and 3.
    std::vector<Flow> flows = {
        {f.host[0], f.host[2], 1.0, 0, {}, {}},
        {f.host[0], f.host[3], 1.0, 1, {}, {}},
    };
    assignPaths(f.g, flows, RoutePolicy::ADAPTIVE);
    auto rates = maxMinRates(f.g, flows);
    EXPECT_DOUBLE_EQ(rates[0], 5.0);
    EXPECT_DOUBLE_EQ(rates[1], 5.0);
}

TEST(MaxMin, UnequalDemandsWaterfill)
{
    // Three flows through one 9-capacity edge plus one flow with its
    // own 2-capacity edge elsewhere: classic water-filling.
    Graph g;
    NodeId a = g.addNode(NodeKind::GPU, "a");
    NodeId b = g.addNode(NodeKind::GPU, "b");
    g.addEdge(a, b, 9.0, 1e-6);
    std::vector<Flow> flows(3);
    for (auto &fl : flows) {
        fl.src = a;
        fl.dst = b;
        fl.bytes = 1.0;
    }
    assignPaths(g, flows, RoutePolicy::ECMP);
    auto rates = maxMinRates(g, flows);
    for (double r : rates)
        EXPECT_DOUBLE_EQ(r, 3.0);
}

TEST(Simulate, CompletionTimesWithDifferentSizes)
{
    Graph g;
    NodeId a = g.addNode(NodeKind::GPU, "a");
    NodeId b = g.addNode(NodeKind::GPU, "b");
    g.addEdge(a, b, 10.0, 1e-6);
    std::vector<Flow> flows = {
        {a, b, 10.0, 0, {}, {}},
        {a, b, 30.0, 1, {}, {}},
    };
    assignPaths(g, flows, RoutePolicy::ECMP);
    auto sim = simulateFlows(g, flows);
    // Phase 1: both at 5 B/s. Flow 0 done at t=2 (10B). Flow 1 has
    // 20B left, then runs at 10 B/s: +2s. Total 4s.
    EXPECT_NEAR(sim.finishTimes[0], 2.0, 1e-6);
    EXPECT_NEAR(sim.finishTimes[1], 4.0, 1e-6);
    EXPECT_NEAR(sim.makespan, 4.0, 1e-6);
}

TEST(Simulate, ZeroByteFlowsFinishInstantly)
{
    Graph g;
    NodeId a = g.addNode(NodeKind::GPU, "a");
    NodeId b = g.addNode(NodeKind::GPU, "b");
    g.addEdge(a, b, 10.0, 1e-6);
    std::vector<Flow> flows = {{a, b, 0.0, 0, {}, {}}};
    assignPaths(g, flows, RoutePolicy::ECMP);
    auto sim = simulateFlows(g, flows);
    EXPECT_DOUBLE_EQ(sim.makespan, 0.0);
}

TEST(Simulate, PeakUtilizationReported)
{
    Graph g;
    NodeId a = g.addNode(NodeKind::GPU, "a");
    NodeId b = g.addNode(NodeKind::GPU, "b");
    g.addEdge(a, b, 10.0, 1e-6);
    std::vector<Flow> flows = {{a, b, 10.0, 0, {}, {}}};
    assignPaths(g, flows, RoutePolicy::ECMP);
    auto sim = simulateFlows(g, flows);
    EXPECT_NEAR(sim.peakUtilization, 1.0, 1e-9);
}

TEST(Simulate, LocalFlowInfinitelyFast)
{
    Graph g;
    NodeId a = g.addNode(NodeKind::GPU, "a");
    std::vector<Flow> flows = {{a, a, 100.0, 0, {}, {}}};
    assignPaths(g, flows, RoutePolicy::ECMP);
    auto sim = simulateFlows(g, flows);
    EXPECT_DOUBLE_EQ(sim.makespan, 0.0);
}

TEST(Simulate, LocalFlowsMixedWithNetworkFlows)
{
    // Regression: a local (infinite-rate) flow in the active set made
    // the first epoch advance by dt == 0, and `remaining -= inf * 0`
    // produced a NaN that only an isinf() check rescued. Local flows
    // now finish up front; network flows must be timed as if the
    // locals were never there.
    Graph g;
    NodeId a = g.addNode(NodeKind::GPU, "a");
    NodeId b = g.addNode(NodeKind::GPU, "b");
    g.addEdge(a, b, 10.0, 1e-6);
    std::vector<Flow> flows = {
        {a, a, 100.0, 0, {}, {}}, // local
        {a, b, 20.0, 1, {}, {}},  // network: 2 s at 10 B/s
        {b, b, 1.0, 2, {}, {}},   // local
    };
    assignPaths(g, flows, RoutePolicy::ECMP);
    auto sim = simulateFlows(g, flows);
    EXPECT_DOUBLE_EQ(sim.finishTimes[0], 0.0);
    EXPECT_DOUBLE_EQ(sim.finishTimes[2], 0.0);
    EXPECT_TRUE(std::isinf(sim.rates[0]));
    EXPECT_NEAR(sim.finishTimes[1], 2.0, 1e-9);
    EXPECT_NEAR(sim.makespan, 2.0, 1e-9);
    for (double t : sim.finishTimes)
        EXPECT_TRUE(std::isfinite(t));
}

TEST(Simulate, SubMicrobyteFlowsTimedExactly)
{
    // Regression: the old absolute finish threshold (1e-6 B) declared
    // sub-microbyte flows done a whole epoch early. The threshold is
    // now relative to each flow's size.
    Graph g;
    NodeId a = g.addNode(NodeKind::GPU, "a");
    NodeId b = g.addNode(NodeKind::GPU, "b");
    g.addEdge(a, b, 1.0, 1e-6);
    std::vector<Flow> flows = {
        {a, b, 1e-9, 0, {}, {}},
        {a, b, 3e-9, 1, {}, {}},
    };
    assignPaths(g, flows, RoutePolicy::ECMP);
    auto sim = simulateFlows(g, flows);
    // Shared 1 B/s link: both at 0.5 B/s until flow 0 finishes at
    // 2e-9 s; flow 1's remaining 2e-9 B then drains at 1 B/s.
    EXPECT_NEAR(sim.finishTimes[0], 2e-9, 1e-15);
    EXPECT_NEAR(sim.finishTimes[1], 4e-9, 1e-15);
    EXPECT_EQ(sim.epochs, 2u);
}

TEST(Simulate, ConservationOfWork)
{
    // Total bytes / aggregate capacity lower-bounds the makespan.
    Fabric f = makeFabric(10.0, 10.0);
    std::vector<Flow> flows;
    std::uint64_t qp = 0;
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
            if (i != j)
                flows.push_back({f.host[i], f.host[j], 120.0, qp++,
                                 {}, {}});
    assignPaths(f.g, flows, RoutePolicy::ADAPTIVE);
    auto sim = simulateFlows(f.g, flows);
    // Each host sends 3*120 = 360 B through a 10 B/s NIC: >= 36 s.
    EXPECT_GE(sim.makespan, 36.0 - 1e-6);
    EXPECT_LT(sim.makespan, 72.0);
}

TEST(Policy, Names)
{
    EXPECT_STREQ(routePolicyName(RoutePolicy::ECMP), "ECMP");
    EXPECT_STREQ(routePolicyName(RoutePolicy::ADAPTIVE), "AR");
    EXPECT_STREQ(routePolicyName(RoutePolicy::STATIC), "Static");
}

} // namespace
} // namespace dsv3::net
