/**
 * @file
 * Tests for the Sec 6.4 ordering model and Sec 5.2.2 incast model.
 */

#include <gtest/gtest.h>

#include "net/incast.hh"
#include "net/ordering.hh"

namespace dsv3::net {
namespace {

// Ordering ---------------------------------------------------------------

TEST(Ordering, FenceAddsFullRtt)
{
    OrderingParams p;
    auto fence = evaluateOrdering(OrderingMechanism::SENDER_FENCE, p);
    auto rar = evaluateOrdering(OrderingMechanism::RAR_HARDWARE, p);
    EXPECT_NEAR(fence.perMessageSeconds - rar.perMessageSeconds,
                p.rttSeconds / 2.0, 1e-12);
}

TEST(Ordering, FenceThroughputLatencyBound)
{
    OrderingParams p;
    p.concurrentStreams = 1;
    auto r = evaluateOrdering(OrderingMechanism::SENDER_FENCE, p);
    // One message per (serialize + RTT).
    double expected = 1.0 / (p.messageBytes / p.wireBytesPerSec +
                             p.rttSeconds);
    EXPECT_NEAR(r.messagesPerSecond, expected, 1.0);
    EXPECT_LT(r.wireUtilization, 0.05);
}

TEST(Ordering, PipelinedMechanismsSaturateWire)
{
    OrderingParams p;
    for (auto m : {OrderingMechanism::RECEIVER_BUFFER,
                   OrderingMechanism::RAR_HARDWARE}) {
        auto r = evaluateOrdering(m, p);
        EXPECT_NEAR(r.wireUtilization, 1.0, 1e-9);
    }
}

TEST(Ordering, ManyStreamsRecoverFenceThroughput)
{
    // IBGDA's point: many GPU threads hide the per-message stall.
    OrderingParams p;
    p.concurrentStreams = 64;
    auto r = evaluateOrdering(OrderingMechanism::SENDER_FENCE, p);
    EXPECT_NEAR(r.wireUtilization, 1.0, 1e-9);
}

TEST(Ordering, RarBeatsReorderBufferOnLatency)
{
    OrderingParams p;
    auto buf =
        evaluateOrdering(OrderingMechanism::RECEIVER_BUFFER, p);
    auto rar = evaluateOrdering(OrderingMechanism::RAR_HARDWARE, p);
    EXPECT_LT(rar.perMessageSeconds, buf.perMessageSeconds);
}

TEST(Ordering, SmallMessagesHurtFenceMost)
{
    OrderingParams small;
    small.messageBytes = 256.0;
    OrderingParams large;
    large.messageBytes = 1 << 20;
    auto s = evaluateOrdering(OrderingMechanism::SENDER_FENCE, small);
    auto l = evaluateOrdering(OrderingMechanism::SENDER_FENCE, large);
    EXPECT_LT(s.wireUtilization, l.wireUtilization);
}

// Incast ------------------------------------------------------------------

TEST(Incast, SharedQueueBlocksVictimBehindBurst)
{
    IncastScenario s;
    auto r = evaluateIncast(QueueDiscipline::SHARED_QUEUE, s);
    EXPECT_GE(r.victimSeconds, r.burstSeconds);
    EXPECT_GT(r.victimInflation, 100.0);
}

TEST(Incast, VoqIsolatesVictim)
{
    IncastScenario s;
    auto shared = evaluateIncast(QueueDiscipline::SHARED_QUEUE, s);
    auto voq = evaluateIncast(QueueDiscipline::VOQ, s);
    EXPECT_LT(voq.victimSeconds, shared.victimSeconds / 10.0);
}

TEST(Incast, CcFurtherImproves)
{
    IncastScenario s;
    auto voq = evaluateIncast(QueueDiscipline::VOQ, s);
    auto cc = evaluateIncast(QueueDiscipline::VOQ_WITH_CC, s);
    EXPECT_LE(cc.victimSeconds, voq.victimSeconds);
}

TEST(Incast, InflationGrowsWithBurstSize)
{
    IncastScenario small;
    small.burstBytesPerSender = 1e6;
    IncastScenario big;
    big.burstBytesPerSender = 16e6;
    auto a = evaluateIncast(QueueDiscipline::SHARED_QUEUE, small);
    auto b = evaluateIncast(QueueDiscipline::SHARED_QUEUE, big);
    EXPECT_GT(b.victimInflation, a.victimInflation);
}

TEST(Incast, VoqVictimBoundedByFairShare)
{
    IncastScenario s;
    auto r = evaluateIncast(QueueDiscipline::VOQ, s);
    // Worst case: victim at 1/(N+1) of line rate the whole way.
    double bound = s.victimBytes /
                   (s.portBytesPerSec / (double)(s.incastSenders + 1));
    EXPECT_LE(r.victimSeconds, bound + 1e-12);
}

TEST(Incast, NoSendersNoInflation)
{
    IncastScenario s;
    s.incastSenders = 1;
    s.burstBytesPerSender = 0.0;
    auto r = evaluateIncast(QueueDiscipline::SHARED_QUEUE, s);
    EXPECT_NEAR(r.victimInflation, 1.0, 0.01);
}

} // namespace
} // namespace dsv3::net
