/**
 * @file
 * Tests for the MPFT/MRFT cluster builders and the latency model
 * (Table 5 calibration).
 */

#include <gtest/gtest.h>

#include "net/cluster.hh"

namespace dsv3::net {
namespace {

ClusterConfig
smallConfig(Fabric fabric, std::size_t hosts)
{
    ClusterConfig cc;
    cc.fabric = fabric;
    cc.hosts = hosts;
    return cc;
}

TEST(Cluster, GpuCountAndIndexing)
{
    Cluster c = buildCluster(smallConfig(Fabric::MPFT, 4));
    EXPECT_EQ(c.gpus.size(), 32u);
    EXPECT_EQ(c.nvswitches.size(), 4u);
    EXPECT_EQ(c.hostOf(0), 0u);
    EXPECT_EQ(c.hostOf(31), 3u);
    EXPECT_EQ(c.planeOf(9), 1u);
    EXPECT_EQ(c.gpu(2, 5), c.gpus[21]);
}

TEST(Cluster, IntraHostConnectivityViaNvswitch)
{
    Cluster c = buildCluster(smallConfig(Fabric::MPFT, 2));
    auto paths = shortestPaths(c.graph, c.gpu(0, 0), c.gpu(0, 5));
    ASSERT_FALSE(paths.empty());
    EXPECT_EQ(paths[0].size(), 2u); // gpu -> nvsw -> gpu
}

TEST(Cluster, SamePlaneCrossHostGoesViaLeaf)
{
    Cluster c = buildCluster(smallConfig(Fabric::MPFT, 2));
    auto paths = shortestPaths(c.graph, c.gpu(0, 3), c.gpu(1, 3));
    ASSERT_FALSE(paths.empty());
    EXPECT_EQ(paths[0].size(), 2u); // gpu -> leaf3 -> gpu
}

TEST(Cluster, MpftCrossPlaneNeedsNvlinkForwarding)
{
    // In MPFT, planes are isolated: a cross-plane cross-host path
    // must traverse an NVSwitch (PXN-style forwarding).
    Cluster c = buildCluster(smallConfig(Fabric::MPFT, 2));
    auto paths = shortestPaths(c.graph, c.gpu(0, 0), c.gpu(1, 5));
    ASSERT_FALSE(paths.empty());
    for (const auto &p : paths) {
        bool via_nvswitch = false;
        for (EdgeId e : p) {
            NodeKind kind = c.graph.node(c.graph.edge(e).to).kind;
            via_nvswitch |= kind == NodeKind::NVSWITCH;
        }
        EXPECT_TRUE(via_nvswitch);
        EXPECT_EQ(p.size(), 4u);
    }
}

TEST(Cluster, MrftCrossPlaneCanUseSpines)
{
    Cluster c = buildCluster(smallConfig(Fabric::MRFT, 2));
    auto paths = shortestPaths(c.graph, c.gpu(0, 0), c.gpu(1, 5));
    ASSERT_FALSE(paths.empty());
    bool any_spine_path = false;
    for (const auto &p : paths) {
        bool via_spine = false;
        for (EdgeId e : p) {
            NodeKind kind = c.graph.node(c.graph.edge(e).to).kind;
            via_spine |= kind == NodeKind::SPINE;
        }
        any_spine_path |= via_spine;
    }
    EXPECT_TRUE(any_spine_path);
}

TEST(Cluster, MpftHasNoSpinesAtSmallScale)
{
    Cluster c = buildCluster(smallConfig(Fabric::MPFT, 4));
    EXPECT_TRUE(c.graph.nodesOfKind(NodeKind::SPINE).empty());
    Cluster m = buildCluster(smallConfig(Fabric::MRFT, 4));
    EXPECT_FALSE(m.graph.nodesOfKind(NodeKind::SPINE).empty());
}

TEST(Cluster, OneLeafPerPlane)
{
    Cluster c = buildCluster(smallConfig(Fabric::MPFT, 4));
    EXPECT_EQ(c.graph.nodesOfKind(NodeKind::LEAF).size(), 8u);
}

TEST(ClusterDeath, PlanesMustMatchGpus)
{
    ClusterConfig cc;
    cc.gpusPerHost = 8;
    cc.planes = 4;
    EXPECT_DEATH(buildCluster(cc), "planes");
}

TEST(Latency, SingleRailSameLeafIbCalibration)
{
    // Table 5 IB: same-leaf 2.8 us with the documented parameters.
    LinkSpec nic{50e9, 0.15e-6};
    Cluster c = buildSingleRail(64, 32, 16, nic, nic, 0.3e-6, 2.2e-6);
    EXPECT_NEAR(endToEndLatency(c, 0, 1, 64.0), 2.8e-6, 0.02e-6);
}

TEST(Latency, SingleRailCrossLeafIbCalibration)
{
    // Table 5 IB: cross-leaf 3.7 us (adds two switches + two links).
    LinkSpec nic{50e9, 0.15e-6};
    Cluster c = buildSingleRail(64, 32, 16, nic, nic, 0.3e-6, 2.2e-6);
    EXPECT_NEAR(endToEndLatency(c, 0, 63, 64.0), 3.7e-6, 0.02e-6);
}

TEST(Latency, RoceSlowerThanIb)
{
    LinkSpec ib{50e9, 0.15e-6};
    LinkSpec roce{50e9, 0.25e-6};
    Cluster c_ib = buildSingleRail(64, 32, 16, ib, ib, 0.3e-6,
                                   2.2e-6);
    Cluster c_roce = buildSingleRail(64, 32, 16, roce, roce, 0.75e-6,
                                     2.35e-6);
    EXPECT_LT(endToEndLatency(c_ib, 0, 63, 64.0),
              endToEndLatency(c_roce, 0, 63, 64.0));
}

TEST(Latency, GrowsWithMessageSize)
{
    LinkSpec nic{50e9, 0.15e-6};
    Cluster c = buildSingleRail(4, 4, 1, nic, nic, 0.3e-6, 2.2e-6);
    double small = endToEndLatency(c, 0, 1, 64.0);
    double big = endToEndLatency(c, 0, 1, 1e6);
    EXPECT_NEAR(big - small, (1e6 - 64.0) / 50e9, 1e-9);
}

TEST(Latency, ZeroForSelf)
{
    Cluster c = buildCluster(smallConfig(Fabric::MPFT, 1));
    EXPECT_DOUBLE_EQ(endToEndLatency(c, 3, 3, 64.0), 0.0);
}

TEST(Cluster, FabricNames)
{
    EXPECT_STREQ(fabricName(Fabric::MPFT), "MPFT");
    EXPECT_STREQ(fabricName(Fabric::MRFT), "MRFT");
}

/** Larger clusters keep per-plane regular structure. */
class ClusterScaleTest : public ::testing::TestWithParam<std::size_t>
{};

TEST_P(ClusterScaleTest, EveryGpuReachesEveryGpu)
{
    Cluster c = buildCluster(smallConfig(Fabric::MPFT, GetParam()));
    // Spot-check reachability from GPU 0 to a sample of others.
    for (std::size_t r = 1; r < c.gpus.size();
         r += c.gpus.size() / 7 + 1) {
        auto paths = shortestPaths(c.graph, c.gpus[0], c.gpus[r]);
        EXPECT_FALSE(paths.empty()) << "rank " << r;
        EXPECT_LE(paths[0].size(), 4u);
    }
}

INSTANTIATE_TEST_SUITE_P(Hosts, ClusterScaleTest,
                         ::testing::Values(1, 2, 4, 8, 16));

} // namespace
} // namespace dsv3::net
