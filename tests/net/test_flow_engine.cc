/**
 * @file
 * Golden tests for FlowSimEngine: the incremental solver must produce
 * rates bit-identical to the classic full-rescan water-fill it
 * replaced. The reference implementation below is a verbatim copy of
 * the seed solver (rebuild subflows per call, rescan every edge per
 * bottleneck iteration).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.hh"
#include "net/flow.hh"

namespace dsv3::net {
namespace {

// ---- Reference solver: the seed implementation, kept verbatim. ----

struct RefSubflow
{
    std::size_t flow;
    const Path *path;
    double rate = 0.0;
    bool frozen = false;
};

void
referenceWaterFill(const Graph &graph,
                   std::vector<RefSubflow> &subflows,
                   std::vector<double> residual)
{
    std::vector<std::uint32_t> active_on_edge(graph.edgeCount(), 0);
    std::size_t unfrozen = 0;
    for (auto &sf : subflows) {
        if (sf.frozen)
            continue;
        ++unfrozen;
        for (EdgeId e : *sf.path)
            ++active_on_edge[e];
    }

    std::vector<bool> done(subflows.size(), false);
    while (unfrozen > 0) {
        double best_share = std::numeric_limits<double>::infinity();
        EdgeId best_edge = 0;
        bool found = false;
        for (EdgeId e = 0; e < graph.edgeCount(); ++e) {
            if (active_on_edge[e] == 0)
                continue;
            double share = residual[e] / (double)active_on_edge[e];
            if (share < best_share) {
                best_share = share;
                best_edge = e;
                found = true;
            }
        }
        ASSERT_TRUE(found);

        for (std::size_t i = 0; i < subflows.size(); ++i) {
            RefSubflow &sf = subflows[i];
            if (sf.frozen || done[i])
                continue;
            bool crosses = false;
            for (EdgeId e : *sf.path) {
                if (e == best_edge) {
                    crosses = true;
                    break;
                }
            }
            if (!crosses)
                continue;
            sf.rate = best_share;
            done[i] = true;
            --unfrozen;
            for (EdgeId e : *sf.path) {
                residual[e] -= best_share;
                if (residual[e] < 0.0)
                    residual[e] = 0.0;
                --active_on_edge[e];
            }
        }
    }
    for (std::size_t i = 0; i < subflows.size(); ++i)
        if (done[i])
            subflows[i].frozen = true;
}

std::vector<double>
referenceMaxMinRates(const Graph &graph, const std::vector<Flow> &flows)
{
    std::vector<RefSubflow> subflows;
    for (std::size_t i = 0; i < flows.size(); ++i) {
        for (const Path &p : flows[i].paths) {
            if (p.empty())
                continue;
            subflows.push_back({i, &p, 0.0, false});
        }
    }
    std::vector<double> residual(graph.edgeCount());
    for (EdgeId e = 0; e < graph.edgeCount(); ++e)
        residual[e] = graph.edge(e).capacity;
    referenceWaterFill(graph, subflows, std::move(residual));

    std::vector<double> rates(flows.size(), 0.0);
    for (const RefSubflow &sf : subflows)
        rates[sf.flow] += sf.rate;
    for (std::size_t i = 0; i < flows.size(); ++i) {
        bool local = true;
        for (const Path &p : flows[i].paths)
            if (!p.empty())
                local = false;
        if (local)
            rates[i] = std::numeric_limits<double>::infinity();
    }
    return rates;
}

// ---- Shared topology / traffic builders. ----

/** Leaf-spine fabric: `leaves` leaves x `per_leaf` hosts, `spines`. */
struct Fabric
{
    Graph g;
    std::vector<NodeId> hosts;
};

Fabric
makeFabric(std::size_t leaves, std::size_t per_leaf,
           std::size_t spines, double nic = 10.0, double trunk = 7.0)
{
    Fabric f;
    std::vector<NodeId> leaf_ids, spine_ids;
    for (std::size_t l = 0; l < leaves; ++l)
        leaf_ids.push_back(
            f.g.addNode(NodeKind::LEAF, "leaf" + std::to_string(l)));
    for (std::size_t s = 0; s < spines; ++s)
        spine_ids.push_back(
            f.g.addNode(NodeKind::SPINE, "sp" + std::to_string(s)));
    for (NodeId leaf : leaf_ids)
        for (NodeId sp : spine_ids)
            f.g.addDuplex(leaf, sp, trunk, 1e-6);
    for (std::size_t l = 0; l < leaves; ++l) {
        for (std::size_t h = 0; h < per_leaf; ++h) {
            NodeId host = f.g.addNode(
                NodeKind::GPU,
                "h" + std::to_string(l * per_leaf + h));
            f.g.addDuplex(host, leaf_ids[l], nic, 1e-6);
            f.hosts.push_back(host);
        }
    }
    return f;
}

std::vector<Flow>
allToAll(const Fabric &f, double bytes = 100.0)
{
    std::vector<Flow> flows;
    std::uint64_t qp = 0;
    for (NodeId src : f.hosts)
        for (NodeId dst : f.hosts)
            if (src != dst)
                flows.push_back({src, dst, bytes, qp++, {}, {}});
    return flows;
}

class GoldenRatesTest : public ::testing::TestWithParam<RoutePolicy>
{};

TEST_P(GoldenRatesTest, EngineMatchesReferenceBitExact)
{
    Fabric f = makeFabric(4, 4, 4);
    auto flows = allToAll(f);
    assignPaths(f.g, flows, GetParam(), 7);

    auto expected = referenceMaxMinRates(f.g, flows);
    auto actual = maxMinRates(f.g, flows);
    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i)
        EXPECT_EQ(actual[i], expected[i]) << "flow " << i;
}

TEST_P(GoldenRatesTest, IncrementalRemovalMatchesRebuild)
{
    // Retiring flows through the engine must give the same rates as
    // rebuilding the reference solver on the surviving subset.
    Fabric f = makeFabric(4, 4, 4);
    auto flows = allToAll(f);
    assignPaths(f.g, flows, GetParam(), 3);

    FlowSimEngine engine(f.g, flows);
    std::vector<Flow> survivors;
    std::vector<std::size_t> survivor_ids;
    for (std::size_t i = 0; i < flows.size(); ++i) {
        if (i % 3 == 0) {
            engine.removeFlow(i);
        } else {
            survivors.push_back(flows[i]);
            survivor_ids.push_back(i);
        }
    }
    EXPECT_EQ(engine.activeFlows(), survivors.size());

    auto expected = referenceMaxMinRates(f.g, survivors);
    const auto &actual = engine.solve();
    for (std::size_t s = 0; s < survivor_ids.size(); ++s)
        EXPECT_EQ(actual[survivor_ids[s]], expected[s])
            << "flow " << survivor_ids[s];
    for (std::size_t i = 0; i < flows.size(); ++i)
        if (i % 3 == 0)
            EXPECT_EQ(actual[i], 0.0);
}

TEST_P(GoldenRatesTest, EverySuccessiveEpochMatchesReference)
{
    // Walk a whole completion schedule: after each epoch's finisher
    // set is retired, the incremental rates must still equal a fresh
    // reference solve on the remaining flows.
    Fabric f = makeFabric(2, 3, 2);
    auto flows = allToAll(f);
    // Vary sizes so completions are staggered.
    Rng rng(11);
    for (auto &fl : flows)
        fl.bytes = 50.0 + 200.0 * rng.nextDouble();
    assignPaths(f.g, flows, GetParam(), 5);

    FlowSimEngine engine(f.g, flows);
    std::vector<double> remaining(flows.size());
    std::vector<bool> alive(flows.size(), true);
    for (std::size_t i = 0; i < flows.size(); ++i)
        remaining[i] = flows[i].bytes;

    std::size_t left = flows.size();
    int guard = 0;
    while (left > 0 && ++guard < 1000) {
        std::vector<Flow> active;
        std::vector<std::size_t> ids;
        for (std::size_t i = 0; i < flows.size(); ++i) {
            if (alive[i]) {
                active.push_back(flows[i]);
                ids.push_back(i);
            }
        }
        auto expected = referenceMaxMinRates(f.g, active);
        const auto &actual = engine.solve();
        for (std::size_t a = 0; a < ids.size(); ++a)
            ASSERT_EQ(actual[ids[a]], expected[a])
                << "epoch " << guard << " flow " << ids[a];

        double dt = std::numeric_limits<double>::infinity();
        for (std::size_t a = 0; a < ids.size(); ++a)
            if (expected[a] > 0.0)
                dt = std::min(dt, remaining[ids[a]] / expected[a]);
        ASSERT_TRUE(std::isfinite(dt));
        for (std::size_t a = 0; a < ids.size(); ++a) {
            std::size_t i = ids[a];
            remaining[i] -= expected[a] * dt;
            if (remaining[i] <= flows[i].bytes * 1e-9) {
                alive[i] = false;
                engine.removeFlow(i);
                --left;
            }
        }
    }
    EXPECT_EQ(left, 0u);
}

INSTANTIATE_TEST_SUITE_P(Policies, GoldenRatesTest,
                         ::testing::Values(RoutePolicy::ECMP,
                                           RoutePolicy::ADAPTIVE,
                                           RoutePolicy::STATIC),
                         [](const auto &info) {
                             return routePolicyName(info.param);
                         });

TEST(FlowSimEngine, ObservabilityCounters)
{
    Fabric f = makeFabric(2, 2, 2);
    auto flows = allToAll(f);
    Rng rng(13);
    for (auto &fl : flows)
        fl.bytes = 10.0 + 90.0 * rng.nextDouble();
    assignPaths(f.g, flows, RoutePolicy::ADAPTIVE);
    auto sim = simulateFlows(f.g, flows);
    // Staggered sizes force multiple completion epochs, each running
    // at least one bottleneck-freeze iteration.
    EXPECT_GT(sim.epochs, 1u);
    EXPECT_GE(sim.solverIterations, (std::uint64_t)sim.epochs);
}

TEST(FlowSimEngine, RemoveFlowIsIdempotent)
{
    Fabric f = makeFabric(2, 2, 2);
    auto flows = allToAll(f);
    assignPaths(f.g, flows, RoutePolicy::ECMP);
    FlowSimEngine engine(f.g, flows);
    engine.removeFlow(0);
    engine.removeFlow(0);
    EXPECT_EQ(engine.activeFlows(), flows.size() - 1);
    EXPECT_FALSE(engine.flowActive(0));
    EXPECT_TRUE(engine.flowActive(1));
}

TEST(FlowSimEngine, SimulateMatchesWrapperPath)
{
    // simulateFlows() is a thin wrapper over FlowSimEngine::run();
    // an engine built and run by hand must agree with it exactly.
    Fabric f = makeFabric(2, 3, 2);
    auto flows = allToAll(f);
    assignPaths(f.g, flows, RoutePolicy::ADAPTIVE);
    auto a = simulateFlows(f.g, flows);
    FlowSimEngine engine(f.g, flows);
    auto b = engine.run();
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.peakUtilization, b.peakUtilization);
    for (std::size_t i = 0; i < flows.size(); ++i) {
        EXPECT_EQ(a.rates[i], b.rates[i]);
        EXPECT_EQ(a.finishTimes[i], b.finishTimes[i]);
    }
}

} // namespace
} // namespace dsv3::net
