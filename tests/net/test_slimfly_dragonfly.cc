/**
 * @file
 * Structural tests for the Slim Fly (MMS) and Dragonfly builders.
 */

#include <gtest/gtest.h>

#include "net/dragonfly.hh"
#include "net/slimfly.hh"

namespace dsv3::net {
namespace {

TEST(Primes, IsPrime)
{
    EXPECT_TRUE(isPrime(2));
    EXPECT_TRUE(isPrime(5));
    EXPECT_TRUE(isPrime(13));
    EXPECT_TRUE(isPrime(29));
    EXPECT_FALSE(isPrime(1));
    EXPECT_FALSE(isPrime(9));
    EXPECT_FALSE(isPrime(28));
}

TEST(Primes, PrimitiveRootGeneratesGroup)
{
    for (std::size_t q : {5ull, 13ull, 17ull, 29ull}) {
        std::size_t g = primitiveRoot(q);
        std::set<std::size_t> seen;
        std::size_t acc = 1;
        for (std::size_t i = 0; i < q - 1; ++i) {
            seen.insert(acc);
            acc = acc * g % q;
        }
        EXPECT_EQ(seen.size(), q - 1) << "q=" << q;
    }
}

TEST(SlimFly, SwitchCountIs2Q2)
{
    Graph g = buildSlimFly(5, 0);
    EXPECT_EQ(g.nodesOfKind(NodeKind::LEAF).size(), 50u);
}

TEST(SlimFly, NetworkDegreeIsUniform)
{
    // MMS with q=5, delta=1: k' = (3*5-1)/2 = 7 on every switch.
    Graph g = buildSlimFly(5, 0);
    for (NodeId sw : g.nodesOfKind(NodeKind::LEAF))
        EXPECT_EQ(g.outEdges(sw).size(), 7u) << "switch " << sw;
}

TEST(SlimFly, DiameterIsTwo)
{
    Graph g = buildSlimFly(5, 0);
    auto switches = g.nodesOfKind(NodeKind::LEAF);
    EXPECT_EQ(graphDiameter(g, switches), 2u);
}

TEST(SlimFly, Q13DegreeAndDiameter)
{
    Graph g = buildSlimFly(13, 0);
    auto switches = g.nodesOfKind(NodeKind::LEAF);
    EXPECT_EQ(switches.size(), 338u);
    for (NodeId sw : switches)
        EXPECT_EQ(g.outEdges(sw).size(), 19u); // (3*13-1)/2
    EXPECT_EQ(graphDiameter(g, switches), 2u);
}

TEST(SlimFly, EndpointsAttached)
{
    Graph g = buildSlimFly(5, 3);
    EXPECT_EQ(g.nodesOfKind(NodeKind::GPU).size(), 150u);
    // Endpoint-to-endpoint worst case: 2 switch hops + 2 host links.
    auto gpus = g.nodesOfKind(NodeKind::GPU);
    EXPECT_LE(hopDistance(g, gpus.front(), gpus.back()), 4u);
}

TEST(SlimFlyDeath, RejectsNonPrime)
{
    EXPECT_DEATH(buildSlimFly(28, 1), "prime");
}

TEST(SlimFlyDeath, RejectsWrongResidue)
{
    EXPECT_DEATH(buildSlimFly(7, 1), "4w");
}

TEST(Dragonfly, BalancedGroupCount)
{
    DragonflyParams p;
    p.a = 4;
    p.h = 2;
    EXPECT_EQ(p.balancedGroups(), 9u);
}

TEST(Dragonfly, SwitchDegreeUniform)
{
    DragonflyParams p;
    p.p = 2;
    p.a = 4;
    p.h = 2;
    Graph g = buildDragonfly(p);
    // Per switch: (a-1) local + h global + p endpoints = 3+2+2 = 7.
    for (NodeId sw : g.nodesOfKind(NodeKind::LEAF))
        EXPECT_EQ(g.outEdges(sw).size(), 7u);
}

TEST(Dragonfly, NodeCounts)
{
    DragonflyParams p;
    p.p = 2;
    p.a = 4;
    p.h = 2;
    Graph g = buildDragonfly(p);
    EXPECT_EQ(g.nodesOfKind(NodeKind::LEAF).size(), 36u); // 9 * 4
    EXPECT_EQ(g.nodesOfKind(NodeKind::GPU).size(), 72u);  // * p
}

TEST(Dragonfly, DiameterAtMostThree)
{
    DragonflyParams p;
    p.p = 1;
    p.a = 4;
    p.h = 2;
    Graph g = buildDragonfly(p);
    auto switches = g.nodesOfKind(NodeKind::LEAF);
    EXPECT_LE(graphDiameter(g, switches), 3u);
}

TEST(Dragonfly, EveryGroupPairConnected)
{
    DragonflyParams p;
    p.p = 1;
    p.a = 3;
    p.h = 2;
    Graph g = buildDragonfly(p); // 7 groups
    // Count global links: g*a*h/2 = 7*3*2/2 = 21 duplex pairs; each
    // of the 21 group pairs gets exactly one.
    std::set<std::pair<int, int>> pairs;
    for (EdgeId e = 0; e < g.edgeCount(); ++e) {
        const Edge &edge = g.edge(e);
        int ga = g.node(edge.from).plane;
        int gb = g.node(edge.to).plane;
        if (ga >= 0 && gb >= 0 && ga != gb)
            pairs.insert({std::min(ga, gb), std::max(ga, gb)});
    }
    EXPECT_EQ(pairs.size(), 21u);
}

} // namespace
} // namespace dsv3::net
