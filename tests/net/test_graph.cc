/**
 * @file
 * Tests for the capacity graph and shortest-path enumeration.
 */

#include <gtest/gtest.h>

#include "net/graph.hh"

namespace dsv3::net {
namespace {

/** Diamond: s -> {a, b} -> t, two equal-cost paths. */
Graph
diamond(double cap_top = 10.0, double cap_bottom = 10.0)
{
    Graph g;
    NodeId s = g.addNode(NodeKind::GPU, "s");
    NodeId a = g.addNode(NodeKind::LEAF, "a");
    NodeId b = g.addNode(NodeKind::LEAF, "b");
    NodeId t = g.addNode(NodeKind::GPU, "t");
    g.addEdge(s, a, cap_top, 1e-6);
    g.addEdge(a, t, cap_top, 1e-6);
    g.addEdge(s, b, cap_bottom, 1e-6);
    g.addEdge(b, t, cap_bottom, 1e-6);
    return g;
}

TEST(Graph, NodeAndEdgeBookkeeping)
{
    Graph g;
    NodeId a = g.addNode(NodeKind::GPU, "a", 2, 3);
    NodeId b = g.addNode(NodeKind::LEAF, "b");
    EdgeId e = g.addEdge(a, b, 5.0, 1e-6);
    EXPECT_EQ(g.nodeCount(), 2u);
    EXPECT_EQ(g.edgeCount(), 1u);
    EXPECT_EQ(g.node(a).plane, 2);
    EXPECT_EQ(g.node(a).host, 3);
    EXPECT_EQ(g.edge(e).from, a);
    EXPECT_EQ(g.edge(e).to, b);
    EXPECT_EQ(g.outEdges(a).size(), 1u);
    EXPECT_TRUE(g.outEdges(b).empty());
}

TEST(Graph, DuplexAddsBothDirections)
{
    Graph g;
    NodeId a = g.addNode(NodeKind::GPU, "a");
    NodeId b = g.addNode(NodeKind::GPU, "b");
    g.addDuplex(a, b, 5.0, 1e-6);
    EXPECT_EQ(g.edgeCount(), 2u);
    EXPECT_EQ(g.outEdges(a).size(), 1u);
    EXPECT_EQ(g.outEdges(b).size(), 1u);
}

TEST(Graph, NodesOfKind)
{
    Graph g = diamond();
    EXPECT_EQ(g.nodesOfKind(NodeKind::GPU).size(), 2u);
    EXPECT_EQ(g.nodesOfKind(NodeKind::LEAF).size(), 2u);
    EXPECT_TRUE(g.nodesOfKind(NodeKind::SPINE).empty());
}

TEST(ShortestPaths, FindsAllEqualCostPaths)
{
    Graph g = diamond();
    auto paths = shortestPaths(g, 0, 3);
    EXPECT_EQ(paths.size(), 2u);
    for (const auto &p : paths)
        EXPECT_EQ(p.size(), 2u);
}

TEST(ShortestPaths, PrefersShorterOverLonger)
{
    // Diamond plus a direct s->t edge: only the 1-hop path returns.
    Graph g = diamond();
    g.addEdge(0, 3, 1.0, 1e-6);
    auto paths = shortestPaths(g, 0, 3);
    ASSERT_EQ(paths.size(), 1u);
    EXPECT_EQ(paths[0].size(), 1u);
}

TEST(ShortestPaths, SelfPathIsEmpty)
{
    Graph g = diamond();
    auto paths = shortestPaths(g, 1, 1);
    ASSERT_EQ(paths.size(), 1u);
    EXPECT_TRUE(paths[0].empty());
}

TEST(ShortestPaths, UnreachableReturnsEmpty)
{
    Graph g;
    g.addNode(NodeKind::GPU, "a");
    g.addNode(NodeKind::GPU, "b");
    EXPECT_TRUE(shortestPaths(g, 0, 1).empty());
}

TEST(ShortestPaths, PathsAreValidChains)
{
    Graph g = diamond();
    for (const auto &p : shortestPaths(g, 0, 3)) {
        NodeId at = 0;
        for (EdgeId e : p) {
            EXPECT_EQ(g.edge(e).from, at);
            at = g.edge(e).to;
        }
        EXPECT_EQ(at, 3u);
    }
}

TEST(ShortestPaths, MaxPathsBounds)
{
    // Wide diamond: 6 middle nodes -> 6 equal paths, capped at 4.
    Graph g;
    NodeId s = g.addNode(NodeKind::GPU, "s");
    NodeId t = g.addNode(NodeKind::GPU, "t");
    for (int i = 0; i < 6; ++i) {
        NodeId m = g.addNode(NodeKind::SPINE, "m");
        g.addEdge(s, m, 1.0, 1e-6);
        g.addEdge(m, t, 1.0, 1e-6);
    }
    EXPECT_EQ(shortestPaths(g, s, t).size(), 6u);
    EXPECT_EQ(shortestPaths(g, s, t, 4).size(), 4u);
}

TEST(PathMetrics, LatencyAndCapacity)
{
    Graph g;
    NodeId a = g.addNode(NodeKind::GPU, "a");
    NodeId b = g.addNode(NodeKind::LEAF, "b");
    NodeId c = g.addNode(NodeKind::GPU, "c");
    EdgeId e1 = g.addEdge(a, b, 10.0, 1e-6);
    EdgeId e2 = g.addEdge(b, c, 4.0, 2e-6);
    Path p = {e1, e2};
    EXPECT_DOUBLE_EQ(pathLatency(g, p), 3e-6);
    EXPECT_DOUBLE_EQ(pathCapacity(g, p), 4.0);
}

TEST(Graph, KindNames)
{
    EXPECT_STREQ(nodeKindName(NodeKind::GPU), "gpu");
    EXPECT_STREQ(nodeKindName(NodeKind::NVSWITCH), "nvswitch");
    EXPECT_STREQ(nodeKindName(NodeKind::LEAF), "leaf");
    EXPECT_STREQ(nodeKindName(NodeKind::SPINE), "spine");
    EXPECT_STREQ(nodeKindName(NodeKind::CORE), "core");
}

} // namespace
} // namespace dsv3::net
