/**
 * @file
 * Tests for the capacity graph and shortest-path enumeration.
 */

#include <gtest/gtest.h>

#include "net/graph.hh"

namespace dsv3::net {
namespace {

/** Diamond: s -> {a, b} -> t, two equal-cost paths. */
Graph
diamond(double cap_top = 10.0, double cap_bottom = 10.0)
{
    Graph g;
    NodeId s = g.addNode(NodeKind::GPU, "s");
    NodeId a = g.addNode(NodeKind::LEAF, "a");
    NodeId b = g.addNode(NodeKind::LEAF, "b");
    NodeId t = g.addNode(NodeKind::GPU, "t");
    g.addEdge(s, a, cap_top, 1e-6);
    g.addEdge(a, t, cap_top, 1e-6);
    g.addEdge(s, b, cap_bottom, 1e-6);
    g.addEdge(b, t, cap_bottom, 1e-6);
    return g;
}

TEST(Graph, NodeAndEdgeBookkeeping)
{
    Graph g;
    NodeId a = g.addNode(NodeKind::GPU, "a", 2, 3);
    NodeId b = g.addNode(NodeKind::LEAF, "b");
    EdgeId e = g.addEdge(a, b, 5.0, 1e-6);
    EXPECT_EQ(g.nodeCount(), 2u);
    EXPECT_EQ(g.edgeCount(), 1u);
    EXPECT_EQ(g.node(a).plane, 2);
    EXPECT_EQ(g.node(a).host, 3);
    EXPECT_EQ(g.edge(e).from, a);
    EXPECT_EQ(g.edge(e).to, b);
    EXPECT_EQ(g.outEdges(a).size(), 1u);
    EXPECT_TRUE(g.outEdges(b).empty());
}

TEST(Graph, DuplexAddsBothDirections)
{
    Graph g;
    NodeId a = g.addNode(NodeKind::GPU, "a");
    NodeId b = g.addNode(NodeKind::GPU, "b");
    g.addDuplex(a, b, 5.0, 1e-6);
    EXPECT_EQ(g.edgeCount(), 2u);
    EXPECT_EQ(g.outEdges(a).size(), 1u);
    EXPECT_EQ(g.outEdges(b).size(), 1u);
}

TEST(Graph, NodesOfKind)
{
    Graph g = diamond();
    EXPECT_EQ(g.nodesOfKind(NodeKind::GPU).size(), 2u);
    EXPECT_EQ(g.nodesOfKind(NodeKind::LEAF).size(), 2u);
    EXPECT_TRUE(g.nodesOfKind(NodeKind::SPINE).empty());
}

TEST(ShortestPaths, FindsAllEqualCostPaths)
{
    Graph g = diamond();
    auto paths = shortestPaths(g, 0, 3);
    EXPECT_EQ(paths.size(), 2u);
    for (const auto &p : paths)
        EXPECT_EQ(p.size(), 2u);
}

TEST(ShortestPaths, PrefersShorterOverLonger)
{
    // Diamond plus a direct s->t edge: only the 1-hop path returns.
    Graph g = diamond();
    g.addEdge(0, 3, 1.0, 1e-6);
    auto paths = shortestPaths(g, 0, 3);
    ASSERT_EQ(paths.size(), 1u);
    EXPECT_EQ(paths[0].size(), 1u);
}

TEST(ShortestPaths, SelfPathIsEmpty)
{
    Graph g = diamond();
    auto paths = shortestPaths(g, 1, 1);
    ASSERT_EQ(paths.size(), 1u);
    EXPECT_TRUE(paths[0].empty());
}

TEST(ShortestPaths, UnreachableReturnsEmpty)
{
    Graph g;
    g.addNode(NodeKind::GPU, "a");
    g.addNode(NodeKind::GPU, "b");
    EXPECT_TRUE(shortestPaths(g, 0, 1).empty());
}

TEST(ShortestPaths, PathsAreValidChains)
{
    Graph g = diamond();
    for (const auto &p : shortestPaths(g, 0, 3)) {
        NodeId at = 0;
        for (EdgeId e : p) {
            EXPECT_EQ(g.edge(e).from, at);
            at = g.edge(e).to;
        }
        EXPECT_EQ(at, 3u);
    }
}

TEST(ShortestPaths, MaxPathsBounds)
{
    // Wide diamond: 6 middle nodes -> 6 equal paths, capped at 4.
    Graph g;
    NodeId s = g.addNode(NodeKind::GPU, "s");
    NodeId t = g.addNode(NodeKind::GPU, "t");
    for (int i = 0; i < 6; ++i) {
        NodeId m = g.addNode(NodeKind::SPINE, "m");
        g.addEdge(s, m, 1.0, 1e-6);
        g.addEdge(m, t, 1.0, 1e-6);
    }
    EXPECT_EQ(shortestPaths(g, s, t).size(), 6u);
    EXPECT_EQ(shortestPaths(g, s, t, 4).size(), 4u);
    // The truncation flag fires exactly when the cap bites, and the
    // clipped enumeration is deterministic: same DFS prefix each time.
    bool truncated = false;
    auto a = shortestPaths(g, s, t, 4, &truncated);
    EXPECT_TRUE(truncated);
    truncated = false;
    auto b = shortestPaths(g, s, t, 4, &truncated);
    EXPECT_TRUE(truncated);
    EXPECT_EQ(a, b);
    // The flag is conservative: it fires whenever the bound is
    // reached, so proving completeness needs bound > path count.
    truncated = false;
    (void)shortestPaths(g, s, t, 7, &truncated);
    EXPECT_FALSE(truncated);
}

TEST(Graph, CsrAdjacencyMatchesInsertionOrder)
{
    // outEdges() must list a node's edges in ascending global edge id
    // (== per-node insertion order), before and after freeze(), and
    // keep working across post-freeze additions.
    Graph g = diamond();
    EdgeSpan span = g.outEdges(0);
    ASSERT_EQ(span.size(), 2u);
    EXPECT_EQ(span[0], 0u); // s->a added first
    EXPECT_EQ(span[1], 2u); // s->b added third
    g.freeze();
    EdgeSpan frozen = g.outEdges(0);
    ASSERT_EQ(frozen.size(), 2u);
    EXPECT_EQ(frozen[0], 0u);
    EXPECT_EQ(frozen[1], 2u);

    // Adding an edge re-dirties the CSR; the new edge shows up last.
    EdgeId extra = g.addEdge(0, 2, 1.0, 1e-6);
    EdgeSpan grown = g.outEdges(0);
    ASSERT_EQ(grown.size(), 3u);
    EXPECT_EQ(grown[2], extra);
}

TEST(Graph, FingerprintFoldsDownedEdges)
{
    Graph g1 = diamond();
    Graph g2 = diamond();
    const std::uint64_t fp = g1.fingerprint();
    EXPECT_EQ(fp, g2.fingerprint());

    // Downing different edges separates fingerprints; the fold is
    // order-independent and self-inverse.
    g1.setEdgeCapacity(0, 0.0);
    g2.setEdgeCapacity(1, 0.0);
    EXPECT_NE(g1.fingerprint(), fp);
    EXPECT_NE(g1.fingerprint(), g2.fingerprint());
    g1.setEdgeCapacity(1, 0.0);
    g2.setEdgeCapacity(0, 0.0);
    EXPECT_EQ(g1.fingerprint(), g2.fingerprint());
    g1.setEdgeCapacity(0, 5.0);
    g1.setEdgeCapacity(1, 5.0);
    EXPECT_EQ(g1.fingerprint(), fp);
}

TEST(PathMetrics, LatencyAndCapacity)
{
    Graph g;
    NodeId a = g.addNode(NodeKind::GPU, "a");
    NodeId b = g.addNode(NodeKind::LEAF, "b");
    NodeId c = g.addNode(NodeKind::GPU, "c");
    EdgeId e1 = g.addEdge(a, b, 10.0, 1e-6);
    EdgeId e2 = g.addEdge(b, c, 4.0, 2e-6);
    Path p = {e1, e2};
    EXPECT_DOUBLE_EQ(pathLatency(g, p), 3e-6);
    EXPECT_DOUBLE_EQ(pathCapacity(g, p), 4.0);
}

TEST(Graph, KindNames)
{
    EXPECT_STREQ(nodeKindName(NodeKind::GPU), "gpu");
    EXPECT_STREQ(nodeKindName(NodeKind::NVSWITCH), "nvswitch");
    EXPECT_STREQ(nodeKindName(NodeKind::LEAF), "leaf");
    EXPECT_STREQ(nodeKindName(NodeKind::SPINE), "spine");
    EXPECT_STREQ(nodeKindName(NodeKind::CORE), "core");
}

} // namespace
} // namespace dsv3::net
