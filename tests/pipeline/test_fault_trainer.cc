/**
 * @file
 * Discrete-event checkpoint/restart trainer and the Monte-Carlo
 * validation of the Sec 6.1 Young/Daly reliability model.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/thread_pool.hh"
#include "fault/schedule.hh"
#include "pipeline/fault_trainer.hh"
#include "pipeline/reliability.hh"

namespace dsv3::pipeline {
namespace {

FaultTrainerConfig
baseConfig()
{
    FaultTrainerConfig cfg;
    cfg.horizonSec = 100000.0;
    cfg.checkpointIntervalSec = 1000.0;
    cfg.checkpointCostSec = 10.0;
    cfg.restartCostSec = 100.0;
    return cfg;
}

fault::FaultSchedule
singleEvent(fault::FaultKind kind, double time, std::size_t rank = 0)
{
    fault::FaultEvent e;
    e.kind = kind;
    e.time = time;
    e.rank = rank;
    return fault::FaultSchedule({e});
}

TEST(FaultTrainer, NoFaultsGoodputIsCheckpointDutyCycle)
{
    FaultTrainerConfig cfg = baseConfig();
    FaultTrainerResult r = replayFaultSchedule(cfg, {});
    EXPECT_EQ(r.failures, 0u);
    EXPECT_EQ(r.restarts, 0u);
    EXPECT_EQ(r.lostSec, 0.0);
    // Steady state: 1000s training + 10s checkpointing per period.
    EXPECT_NEAR(r.goodput, 1000.0 / 1010.0, 1e-3);
    EXPECT_NEAR((double)r.checkpoints, 100000.0 / 1010.0, 1.0);
}

TEST(FaultTrainer, SingleFailureRollsBackToNewestCheckpoint)
{
    FaultTrainerConfig cfg = baseConfig();
    cfg.horizonSec = 3000.0;
    // Period boundary (ckpt done) at t=1010 with 1000s trained.
    // Crash at t=1510: 500s of progress since the checkpoint is lost,
    // then a 100s restart.
    FaultTrainerResult r = replayFaultSchedule(
        cfg, singleEvent(fault::FaultKind::RANK_DOWN, 1510.0));
    EXPECT_EQ(r.failures, 1u);
    EXPECT_EQ(r.restarts, 1u);
    EXPECT_NEAR(r.lostSec, 500.0, 1e-9);
    // Timeline: 1010 (train+ckpt) + 500 (lost) + 100 (restart)
    // = 1610; the remaining 1390s spend 10s on one checkpoint, so
    // 1380s more training lands on top of the restored 1000s.
    EXPECT_NEAR(r.trainedSec, 1000.0 + 1380.0, 1e-9);
}

TEST(FaultTrainer, FailureBeforeFirstCheckpointLosesEverything)
{
    FaultTrainerConfig cfg = baseConfig();
    cfg.horizonSec = 900.0;
    FaultTrainerResult r = replayFaultSchedule(
        cfg, singleEvent(fault::FaultKind::RANK_DOWN, 800.0));
    EXPECT_EQ(r.failures, 1u);
    EXPECT_NEAR(r.lostSec, 800.0, 1e-9);
    // 800 lost + 100 restart = 900: horizon ends with nothing kept.
    EXPECT_EQ(r.trainedSec, 0.0);
}

TEST(FaultTrainer, SdcRollsBackToCleanCheckpoint)
{
    FaultTrainerConfig cfg = baseConfig();
    cfg.horizonSec = 10000.0;
    cfg.sdcDetectSec = 2000.0;
    // Corruption at t=1515 (trained ~1500s). Checkpoints written
    // after that point are tainted; detection at t=3515 must roll
    // back to the t=1010 checkpoint (1000s trained), discarding the
    // tainted one written around trained=2000s.
    FaultTrainerResult r = replayFaultSchedule(
        cfg, singleEvent(fault::FaultKind::SDC, 1515.0));
    EXPECT_EQ(r.sdcEvents, 1u);
    EXPECT_EQ(r.sdcRollbacks, 1u);
    EXPECT_EQ(r.failures, 0u);
    // Work beyond trained=1000s at detection time is discarded.
    EXPECT_GT(r.lostSec, 1000.0);
    EXPECT_GT(r.trainedSec, 0.0);
}

TEST(FaultTrainer, ImmediateSdcDetectionLosesLessThanDelayed)
{
    FaultTrainerConfig cfg = baseConfig();
    cfg.horizonSec = 20000.0;
    fault::FaultSchedule sdc =
        singleEvent(fault::FaultKind::SDC, 1515.0);

    cfg.sdcDetectSec = 0.0; // hardware checksums
    FaultTrainerResult hw = replayFaultSchedule(cfg, sdc);
    cfg.sdcDetectSec = 4.0 * 3600.0; // app heuristics
    FaultTrainerResult heur = replayFaultSchedule(cfg, sdc);

    EXPECT_EQ(hw.sdcRollbacks, 1u);
    EXPECT_LT(hw.lostSec, heur.lostSec);
    EXPECT_GT(hw.trainedSec, heur.trainedSec);
}

TEST(FaultTrainer, FabricFaultsThrottleInsteadOfKilling)
{
    FaultTrainerConfig cfg = baseConfig();
    cfg.horizonSec = 2000.0;
    cfg.checkpointIntervalSec = 1e9; // isolate throughput effect
    cfg.degradedThroughput = 0.5;

    std::vector<fault::FaultEvent> evs(2);
    evs[0].kind = fault::FaultKind::PLANE_DOWN;
    evs[0].plane = 0;
    evs[0].time = 500.0;
    evs[1].kind = fault::FaultKind::PLANE_UP;
    evs[1].plane = 0;
    evs[1].time = 1500.0;
    FaultTrainerResult r =
        replayFaultSchedule(cfg, fault::FaultSchedule(evs));
    EXPECT_EQ(r.failures, 0u);
    // 500s full + 1000s at half speed + 500s full = 1500s trained.
    EXPECT_NEAR(r.trainedSec, 1500.0, 1e-9);
}

TEST(FaultTrainer, MonteCarloMatchesYoungDaly)
{
    // The acceptance criterion: in the validity regime (2048 GPUs,
    // tau << cluster MTBF) the Monte-Carlo goodput lands within 5%
    // of the analytic Young/Daly prediction.
    ReliabilityParams p;
    p.gpus = 2048;
    MonteCarloReliability mc =
        runMonteCarloReliability(p, true, 16, 777);
    EXPECT_TRUE(mc.analytic.validRegime);
    EXPECT_EQ(mc.trials, 16u);
    EXPECT_GT(mc.meanFailures, 0.0);
    EXPECT_LT(mc.relError, 0.05);
    EXPECT_NEAR(mc.meanGoodput, mc.analyticGoodput,
                0.05 * mc.analyticGoodput);
    EXPECT_LE(mc.minGoodput, mc.meanGoodput);
    EXPECT_GE(mc.maxGoodput, mc.meanGoodput);
}

TEST(FaultTrainer, MonteCarloIsDeterministicAcrossThreadCounts)
{
    ReliabilityParams p;
    p.gpus = 2048;
    MonteCarloReliability runs[3];
    std::size_t widths[3] = {1, 2, 8};
    for (int i = 0; i < 3; ++i) {
        setParallelForWidth(widths[i]);
        runs[i] = runMonteCarloReliability(p, true, 8, 2025);
    }
    setParallelForWidth(0);
    for (int i = 1; i < 3; ++i) {
        EXPECT_EQ(runs[0].meanGoodput, runs[i].meanGoodput);
        EXPECT_EQ(runs[0].minGoodput, runs[i].minGoodput);
        EXPECT_EQ(runs[0].maxGoodput, runs[i].maxGoodput);
        EXPECT_EQ(runs[0].meanFailures, runs[i].meanFailures);
    }
}

TEST(FaultTrainer, MonteCarloSeedChangesTrials)
{
    ReliabilityParams p;
    p.gpus = 2048;
    MonteCarloReliability a = runMonteCarloReliability(p, true, 4, 1);
    MonteCarloReliability b = runMonteCarloReliability(p, true, 4, 2);
    MonteCarloReliability a2 =
        runMonteCarloReliability(p, true, 4, 1);
    EXPECT_EQ(a.meanGoodput, a2.meanGoodput);
    EXPECT_NE(a.meanGoodput, b.meanGoodput);
}

TEST(ReliabilityClamp, ExtremeScaleStaysInValidRange)
{
    // Satellite (a): degenerate regimes must not produce overheads
    // above 1, a tau above the MTBF, or a negative goodput.
    ReliabilityParams p;
    p.gpus = 1 << 24;
    p.gpuMtbfHours = 100.0; // cluster MTBF ~ 21ms
    auto r = evaluateReliability(p, false);
    EXPECT_FALSE(r.validRegime);
    double mtbf_sec = p.gpuMtbfHours / (double)p.gpus * 3600.0;
    EXPECT_LE(r.optimalCheckpointSec, mtbf_sec + 1e-12);
    EXPECT_LE(r.checkpointOverhead, 1.0);
    EXPECT_LE(r.reworkOverhead, 1.0);
    EXPECT_LE(r.restartOverhead, 1.0);
    EXPECT_GE(r.goodput, 0.0);
}

TEST(ReliabilityClamp, ValidRegimeFlagTracksTauVsMtbf)
{
    ReliabilityParams p;
    p.gpus = 2048;
    EXPECT_TRUE(evaluateReliability(p, true).validRegime);
    p.gpus = 1 << 22;
    EXPECT_FALSE(evaluateReliability(p, true).validRegime);
}

} // namespace
} // namespace dsv3::pipeline
