/**
 * @file
 * Tests for the pipeline schedule model and the Table 4 training
 * simulation.
 */

#include <gtest/gtest.h>

#include "model/config.hh"
#include "model/hardware.hh"
#include "pipeline/schedule.hh"
#include "pipeline/training.hh"

namespace dsv3::pipeline {
namespace {

ScheduleParams
baseParams()
{
    ScheduleParams p;
    p.kind = Schedule::DUALPIPE;
    p.stages = 16;
    p.microbatches = 73;
    p.chunk.f = 0.0753;
    p.chunk.b = 0.1327;
    p.chunk.w = 0.032;
    p.optimizerTime = 0.29;
    return p;
}

TEST(Schedule, PhaseDecompositionShape)
{
    PhaseBreakdown pb = computeSchedule(baseParams());
    // Calibrated to the Table 4 MPFT column.
    EXPECT_NEAR(pb.warmupF, 1.13, 0.01);
    EXPECT_NEAR(pb.drainB, 1.99, 0.01);
    EXPECT_NEAR(pb.tailW, 0.48, 0.01);
    EXPECT_NEAR(pb.steady, 13.92, 0.05);
    EXPECT_NEAR(pb.optimizer, 0.29, 0.001);
    EXPECT_NEAR(pb.total(), 19.9, 0.6);
}

TEST(Schedule, DualPipeBubbleSmallerThan1F1B)
{
    ScheduleParams dual = baseParams();
    ScheduleParams classic = baseParams();
    classic.kind = Schedule::ONE_F_ONE_B;
    EXPECT_LT(computeSchedule(dual).bubble,
              computeSchedule(classic).bubble);
}

TEST(Schedule, BubbleFractionShrinksWithMicrobatches)
{
    ScheduleParams few = baseParams();
    few.microbatches = 20;
    ScheduleParams many = baseParams();
    many.microbatches = 200;
    EXPECT_GT(computeSchedule(few).bubbleFraction(),
              computeSchedule(many).bubbleFraction());
}

TEST(Schedule, ExposedCommStretchesEveryPhase)
{
    ScheduleParams quiet = baseParams();
    ScheduleParams noisy = baseParams();
    noisy.chunk.exposedComm = 0.01;
    PhaseBreakdown a = computeSchedule(quiet);
    PhaseBreakdown b = computeSchedule(noisy);
    EXPECT_GT(b.warmupF, a.warmupF);
    EXPECT_GT(b.steady, a.steady);
    EXPECT_GT(b.total(), a.total());
}

TEST(Schedule, SingleStageHasNoBubble)
{
    ScheduleParams p = baseParams();
    p.stages = 1;
    p.microbatches = 8;
    PhaseBreakdown pb = computeSchedule(p);
    EXPECT_DOUBLE_EQ(pb.warmupF, 0.0);
    EXPECT_DOUBLE_EQ(pb.bubble, 0.0);
}

TEST(Schedule, WorkConservation)
{
    // Total time must be at least the serial compute of the
    // microbatches on one stage.
    ScheduleParams p = baseParams();
    PhaseBreakdown pb = computeSchedule(p);
    double serial = (double)p.microbatches *
                    (p.chunk.f + p.chunk.b + p.chunk.w);
    EXPECT_GE(pb.total(), serial * 0.9);
}

TEST(ScheduleDeath, NeedsEnoughMicrobatches)
{
    ScheduleParams p = baseParams();
    p.microbatches = 8; // < stages
    EXPECT_DEATH(computeSchedule(p), "microbatches");
}

TEST(Schedule, Names)
{
    EXPECT_STREQ(scheduleName(Schedule::DUALPIPE), "DualPipe");
    EXPECT_STREQ(scheduleName(Schedule::ONE_F_ONE_B), "1F1B");
}

TrainingSetup
v3Setup(net::Fabric fabric)
{
    TrainingSetup s;
    s.modelConfig = model::deepSeekV3();
    s.node = model::h800Node();
    s.fabric = fabric;
    return s;
}

TEST(Training, Table4StepTime)
{
    TrainingReport r = simulateTraining(v3Setup(net::Fabric::MPFT));
    // Paper: 19.926 s/step; within 3%.
    EXPECT_NEAR(r.stepSeconds, 19.926, 19.926 * 0.03);
}

TEST(Training, Table4TokensPerDay)
{
    TrainingReport r = simulateTraining(v3Setup(net::Fabric::MPFT));
    // Paper: 272.80 B tokens/day; within 3%.
    EXPECT_NEAR(r.tokensPerDay / 1e9, 272.8, 272.8 * 0.03);
}

TEST(Training, Table4Mfu)
{
    TrainingReport r = simulateTraining(v3Setup(net::Fabric::MPFT));
    // Paper: 43.73% non-causal, 38.94% causal.
    EXPECT_NEAR(r.mfuNonCausal, 0.4373, 0.015);
    EXPECT_NEAR(r.mfuCausal, 0.3894, 0.015);
    EXPECT_GT(r.mfuNonCausal, r.mfuCausal);
}

TEST(Training, Table4Tflops)
{
    TrainingReport r = simulateTraining(v3Setup(net::Fabric::MPFT));
    EXPECT_NEAR(r.tflopsNonCausal, 432.0, 15.0);
    EXPECT_NEAR(r.tflopsCausal, 385.0, 15.0);
}

TEST(Training, MpftMatchesMrft)
{
    TrainingReport mpft = simulateTraining(v3Setup(net::Fabric::MPFT));
    TrainingReport mrft = simulateTraining(v3Setup(net::Fabric::MRFT));
    // The paper's headline: the fabrics perform identically.
    EXPECT_NEAR(mpft.stepSeconds / mrft.stepSeconds, 1.0, 0.01);
    EXPECT_NEAR(mpft.tokensPerDay / mrft.tokensPerDay, 1.0, 0.01);
}

TEST(Training, FabricBusBwMeasured)
{
    TrainingReport r = simulateTraining(v3Setup(net::Fabric::MPFT));
    EXPECT_GT(r.allToAllBusBw, 30e9);
    EXPECT_LT(r.allToAllBusBw, 60e9);
    EXPECT_GT(r.epCommPerChunk, 0.0);
}

TEST(Training, SlowerNicHurtsStepTime)
{
    TrainingSetup fast = v3Setup(net::Fabric::MPFT);
    TrainingSetup slow = fast;
    slow.node.nicEffGBs = 10.0;
    EXPECT_GT(simulateTraining(slow).stepSeconds,
              simulateTraining(fast).stepSeconds);
}

TEST(Training, PhaseSumEqualsStep)
{
    TrainingReport r = simulateTraining(v3Setup(net::Fabric::MPFT));
    double sum = r.phases.warmupF + r.phases.steady + r.phases.drainB +
                 r.phases.tailW + r.phases.bubble + r.phases.optimizer;
    EXPECT_NEAR(sum, r.stepSeconds, 1e-9);
}

TEST(TrainingDeath, GpusMustFactor)
{
    TrainingSetup s = v3Setup(net::Fabric::MPFT);
    s.totalGpus = 1000; // not divisible by 16 * 64
    EXPECT_DEATH(simulateTraining(s), "factor");
}

} // namespace
} // namespace dsv3::pipeline
