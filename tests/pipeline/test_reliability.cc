/**
 * @file
 * Tests for the Sec 6.1 reliability/goodput model.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "pipeline/reliability.hh"

namespace dsv3::pipeline {
namespace {

TEST(Reliability, ClusterMtbfScalesInversely)
{
    ReliabilityParams p;
    p.gpus = 2048;
    auto small = evaluateReliability(p, true);
    p.gpus = 4096;
    auto big = evaluateReliability(p, true);
    EXPECT_NEAR(small.clusterMtbfHours / big.clusterMtbfHours, 2.0,
                1e-9);
}

TEST(Reliability, YoungDalyInterval)
{
    ReliabilityParams p;
    p.gpus = 2048;
    p.gpuMtbfHours = 50000.0;
    p.checkpointCostSec = 60.0;
    auto r = evaluateReliability(p, true);
    double mtbf_sec = 50000.0 / 2048.0 * 3600.0;
    EXPECT_NEAR(r.optimalCheckpointSec,
                std::sqrt(2.0 * 60.0 * mtbf_sec), 1e-6);
}

TEST(Reliability, GoodputDecreasesWithScale)
{
    ReliabilityParams p;
    double prev = 1.0;
    for (std::size_t gpus : {1024, 4096, 16384, 65536}) {
        p.gpus = gpus;
        double g = evaluateReliability(p, true).goodput;
        EXPECT_LT(g, prev);
        prev = g;
    }
}

TEST(Reliability, HardwareSdcDetectionHelps)
{
    ReliabilityParams p;
    p.gpus = 65536;
    auto heuristic = evaluateReliability(p, false);
    auto hw = evaluateReliability(p, true);
    EXPECT_GT(hw.goodput, heuristic.goodput);
    EXPECT_LT(hw.sdcOverhead, heuristic.sdcOverhead);
}

TEST(Reliability, SdcOverheadScalesWithRateAndDelay)
{
    ReliabilityParams p;
    p.gpus = 8192;
    auto base = evaluateReliability(p, false);
    p.heuristicDetectHours *= 2.0;
    auto slower = evaluateReliability(p, false);
    EXPECT_NEAR(slower.sdcOverhead, 2.0 * base.sdcOverhead, 1e-9);
}

TEST(Reliability, GoodputAtPaperScaleIsHigh)
{
    // The 2048-GPU deployment should lose only a few percent.
    ReliabilityParams p;
    p.gpus = 2048;
    auto r = evaluateReliability(p, true);
    EXPECT_GT(r.goodput, 0.90);
}

TEST(Reliability, CheaperCheckpointsRaiseGoodput)
{
    ReliabilityParams p;
    p.gpus = 16384;
    auto slow = evaluateReliability(p, true);
    p.checkpointCostSec = 5.0; // e.g. 3FS-backed async checkpoints
    auto fast = evaluateReliability(p, true);
    EXPECT_GT(fast.goodput, slow.goodput);
    EXPECT_LT(fast.optimalCheckpointSec, slow.optimalCheckpointSec);
}

TEST(Reliability, OverheadsSumToComplement)
{
    ReliabilityParams p;
    p.gpus = 4096;
    auto r = evaluateReliability(p, false);
    EXPECT_NEAR(r.goodput + r.checkpointOverhead + r.reworkOverhead +
                    r.restartOverhead + r.sdcOverhead,
                1.0, 1e-9);
}

TEST(Reliability, GoodputNeverNegative)
{
    ReliabilityParams p;
    p.gpus = 1 << 20; // absurd scale
    auto r = evaluateReliability(p, false);
    EXPECT_GE(r.goodput, 0.0);
}

} // namespace
} // namespace dsv3::pipeline
