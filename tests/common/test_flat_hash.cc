/**
 * @file
 * Fuzz FlatHashMap (open addressing, tombstone deletes) against
 * std::unordered_map, with both the full splitmix hasher and the
 * one-multiply Fibonacci hasher the KV pager uses. Churn-heavy
 * sequences exercise tombstone reuse and the occupancy-triggered
 * rehash, including the same-size rehash that sweeps tombstones.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>

#include "common/flat_hash.hh"
#include "common/rng.hh"

namespace dsv3 {
namespace {

template <typename Hash>
void
fuzzAgainst(std::uint64_t seed, std::uint64_t key_space)
{
    Rng rng(seed);
    FlatHashMap<std::uint64_t, std::uint64_t, Hash> map;
    std::unordered_map<std::uint64_t, std::uint64_t> ref;
    for (int step = 0; step < 20000; ++step) {
        const std::uint64_t key = rng.nextBounded(key_space);
        const std::uint64_t op = rng.nextBounded(100);
        if (op < 50) {
            const std::uint64_t v = rng.nextU64();
            map.insert(key, v);
            ref[key] = v;
        } else if (op < 70) {
            bool created = false;
            std::uint64_t &slot = map.findOrInsert(key, created);
            auto [it, inserted] = ref.try_emplace(key, 0);
            ASSERT_EQ(created, inserted);
            if (created)
                slot = it->second = rng.nextU64();
            else
                ASSERT_EQ(slot, it->second);
        } else if (op < 90) {
            ASSERT_EQ(map.erase(key), ref.erase(key) > 0);
        } else {
            const std::uint64_t *found = map.find(key);
            auto it = ref.find(key);
            if (it == ref.end()) {
                ASSERT_EQ(found, nullptr);
            } else {
                ASSERT_NE(found, nullptr);
                ASSERT_EQ(*found, it->second);
            }
        }
        ASSERT_EQ(map.size(), ref.size());
    }
    // Full cross-check at the end.
    for (const auto &[k, v] : ref) {
        const std::uint64_t *found = map.find(k);
        ASSERT_NE(found, nullptr);
        ASSERT_EQ(*found, v);
    }
}

TEST(FlatHashMap, FuzzSplitmixHasher)
{
    // Small key space = heavy churn on few keys (tombstone reuse);
    // large = growth and rehashing.
    fuzzAgainst<FlatHashU64>(7, 64);
    fuzzAgainst<FlatHashU64>(8, 1 << 14);
}

TEST(FlatHashMap, FuzzFibonacciHasher)
{
    // Dense small integers are exactly the KV pager's key
    // distribution; the multiply-only hasher must still behave on a
    // churny load where probes wrap.
    fuzzAgainst<FlatHashFibonacci>(9, 64);
    fuzzAgainst<FlatHashFibonacci>(10, 1 << 14);
}

TEST(FlatHashMap, ClearResetsAndReuses)
{
    FlatHashMap<std::uint64_t, std::uint64_t> map;
    for (std::uint64_t k = 0; k < 100; ++k)
        map.insert(k, k * 3);
    EXPECT_EQ(map.size(), 100u);
    map.clear();
    EXPECT_EQ(map.size(), 0u);
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.find(5), nullptr);
    map.insert(5, 99);
    ASSERT_NE(map.find(5), nullptr);
    EXPECT_EQ(*map.find(5), 99u);
}

} // namespace
} // namespace dsv3
