/**
 * @file
 * Tests for unit conversion and formatting helpers.
 */

#include <gtest/gtest.h>

#include "common/units.hh"

namespace dsv3 {
namespace {

TEST(Units, GbpsConversion)
{
    EXPECT_DOUBLE_EQ(gbpsToBytesPerSec(400.0), 50e9);
    EXPECT_DOUBLE_EQ(gbpsToBytesPerSec(8.0), 1e9);
}

TEST(Units, FormatBytesDecimal)
{
    // The paper's KV-cache units: 70,272 bytes == "70.272 KB".
    EXPECT_EQ(formatBytes(70272.0), "70.272 KB");
    EXPECT_EQ(formatBytes(516096.0), "516.096 KB");
}

TEST(Units, FormatBytesRanges)
{
    EXPECT_EQ(formatBytes(512.0, 0), "512 B");
    EXPECT_EQ(formatBytes(2.5e6, 1), "2.5 MB");
    EXPECT_EQ(formatBytes(3e9, 0), "3 GB");
    EXPECT_EQ(formatBytes(1.2e12, 1), "1.2 TB");
}

TEST(Units, FormatRate)
{
    EXPECT_EQ(formatRate(50e9, 0), "50 GB/s");
    EXPECT_EQ(formatRate(42.5e9, 1), "42.5 GB/s");
}

TEST(Units, FormatTimeUnits)
{
    EXPECT_EQ(formatTime(2.5), "2.50 s");
    EXPECT_EQ(formatTime(0.01486, 2), "14.86 ms");
    EXPECT_EQ(formatTime(120.96e-6, 2), "120.96 us");
    EXPECT_EQ(formatTime(5e-9, 0), "5 ns");
}

TEST(Units, FormatCountSeparators)
{
    EXPECT_EQ(formatCount(0), "0");
    EXPECT_EQ(formatCount(999), "999");
    EXPECT_EQ(formatCount(1000), "1,000");
    EXPECT_EQ(formatCount(16384), "16,384");
    EXPECT_EQ(formatCount(261632), "261,632");
}

TEST(Units, FormatMillions)
{
    EXPECT_EQ(formatMillions(72e6, 0), "$72M");
    EXPECT_EQ(formatMillions(9.1e6, 1), "$9.1M");
}

} // namespace
} // namespace dsv3
