/**
 * @file
 * Fuzz SmallVec and FlatDeque against their std counterparts: the
 * serving hot loop swaps std::vector/std::deque for these, so any
 * behavioral divergence is a byte-identity bug waiting to happen.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <vector>

#include "common/rng.hh"
#include "common/small_vec.hh"

namespace dsv3 {
namespace {

TEST(SmallVec, FuzzAgainstStdVector)
{
    Rng rng(101);
    for (int round = 0; round < 6; ++round) {
        SmallVec<std::uint64_t, 8> sv;
        std::vector<std::uint64_t> ref;
        for (int step = 0; step < 4000; ++step) {
            const std::uint64_t op = rng.nextBounded(100);
            if (op < 55 || ref.empty()) {
                const std::uint64_t v = rng.nextU64();
                sv.push_back(v);
                ref.push_back(v);
            } else if (op < 70) {
                sv.pop_back();
                ref.pop_back();
            } else if (op < 80) {
                const std::size_t n =
                    (std::size_t)rng.nextBounded(ref.size() + 1);
                sv.truncate(n);
                ref.resize(n);
            } else if (op < 90) {
                const std::size_t i =
                    (std::size_t)rng.nextBounded(ref.size());
                const std::uint64_t v = rng.nextU64();
                sv[i] = v;
                ref[i] = v;
            } else if (op < 95) {
                sv.clear();
                ref.clear();
            } else {
                // Copy round-trips across the inline/heap boundary.
                SmallVec<std::uint64_t, 8> copy(sv);
                sv = copy;
            }
            ASSERT_EQ(sv.size(), ref.size());
            ASSERT_TRUE(sv.empty() == ref.empty());
            for (std::size_t i = 0; i < ref.size(); ++i)
                ASSERT_EQ(sv[i], ref[i]);
        }
    }
}

TEST(SmallVec, InlineToHeapSpillKeepsContents)
{
    SmallVec<int, 4> sv;
    for (int i = 0; i < 64; ++i) {
        sv.push_back(i);
        ASSERT_EQ(sv.back(), i);
    }
    EXPECT_GE(sv.capacity(), 64u);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(sv[(std::size_t)i], i);
    // Iteration covers the heap storage.
    int expect = 0;
    for (int v : sv)
        EXPECT_EQ(v, expect++);
}

TEST(FlatDeque, FuzzAgainstStdDeque)
{
    Rng rng(202);
    for (int round = 0; round < 6; ++round) {
        FlatDeque<std::uint64_t> dq(4);
        std::deque<std::uint64_t> ref;
        for (int step = 0; step < 4000; ++step) {
            const std::uint64_t op = rng.nextBounded(100);
            if (op < 40 || ref.empty()) {
                const std::uint64_t v = rng.nextU64();
                dq.push_back(v);
                ref.push_back(v);
            } else if (op < 55) {
                const std::uint64_t v = rng.nextU64();
                dq.push_front(v);
                ref.push_front(v);
            } else if (op < 75) {
                dq.pop_front();
                ref.pop_front();
            } else if (op < 90) {
                dq.pop_back();
                ref.pop_back();
            } else if (op < 93) {
                dq.clear();
                ref.clear();
            } else if (!ref.empty()) {
                const std::size_t i =
                    (std::size_t)rng.nextBounded(ref.size());
                const std::uint64_t v = rng.nextU64();
                dq[i] = v;
                ref[i] = v;
            }
            ASSERT_EQ(dq.size(), ref.size());
            if (!ref.empty()) {
                ASSERT_EQ(dq.front(), ref.front());
                ASSERT_EQ(dq.back(), ref.back());
            }
            for (std::size_t i = 0; i < ref.size(); ++i)
                ASSERT_EQ(dq[i], ref[i]);
        }
    }
}

} // namespace
} // namespace dsv3
