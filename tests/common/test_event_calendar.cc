/**
 * @file
 * Property tests for the two-level EventCalendar against a
 * std::priority_queue reference: identical (time, order) pop order on
 * random event soups, same-instant waves, pushes into the past,
 * extreme timestamps, and interleaved push/pop traffic — the exact
 * contract the serving simulator's byte-identity rests on.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <queue>
#include <vector>

#include "common/event_calendar.hh"
#include "common/rng.hh"

namespace dsv3 {
namespace {

struct RefEntry
{
    double time;
    std::uint64_t order;
    int payload;
};

/** Reference comparator: exactly the heap the simulator grew out of. */
struct RefAfter
{
    bool
    operator()(const RefEntry &a, const RefEntry &b) const
    {
        if (a.time != b.time)
            return a.time > b.time;
        return a.order > b.order;
    }
};

class Reference
{
  public:
    void
    push(double time, int payload)
    {
        q_.push(RefEntry{time, order_++, payload});
    }

    bool empty() const { return q_.empty(); }

    RefEntry
    pop()
    {
        RefEntry e = q_.top();
        q_.pop();
        return e;
    }

  private:
    std::priority_queue<RefEntry, std::vector<RefEntry>, RefAfter> q_;
    std::uint64_t order_ = 0;
};

/** Drain both structures and require identical (time, order, payload)
 *  sequences, checking peekKey() against each pop on the way. */
void
expectSameDrain(EventCalendar<int> &cal, Reference &ref)
{
    while (!ref.empty()) {
        ASSERT_FALSE(cal.empty());
        const RefEntry want = ref.pop();
        const EventCalendar<int>::Key key = cal.peekKey();
        EXPECT_EQ(key.time, want.time);
        EXPECT_EQ(key.order, want.order);
        const EventCalendar<int>::Entry got = cal.pop();
        ASSERT_EQ(got.time, want.time);
        ASSERT_EQ(got.order, want.order);
        ASSERT_EQ(got.payload, want.payload);
    }
    EXPECT_TRUE(cal.empty());
}

TEST(EventCalendar, RandomSoupMatchesPriorityQueue)
{
    Rng rng(11);
    for (int round = 0; round < 8; ++round) {
        EventCalendar<int> cal(1e-3, 64);
        Reference ref;
        const int n = 500 + (int)rng.nextBounded(1500);
        for (int i = 0; i < n; ++i) {
            const double t = rng.uniform(0.0, 10.0);
            cal.push(t, i);
            ref.push(t, i);
        }
        expectSameDrain(cal, ref);
    }
}

TEST(EventCalendar, SameInstantWavePreservesFifo)
{
    EventCalendar<int> cal(1e-3, 64);
    Reference ref;
    // A wave no bucket width can split: FIFO among equal times is
    // carried by the order stamp alone.
    for (int i = 0; i < 400; ++i) {
        cal.push(1.0, i);
        ref.push(1.0, i);
    }
    // A second wave at another instant, interleaved pushes.
    for (int i = 0; i < 100; ++i) {
        cal.push(0.5, 1000 + i);
        ref.push(0.5, 1000 + i);
        cal.push(1.0, 2000 + i);
        ref.push(1.0, 2000 + i);
    }
    expectSameDrain(cal, ref);
}

TEST(EventCalendar, PushIntoThePastIsLegal)
{
    Rng rng(23);
    EventCalendar<int> cal(1e-3, 64);
    Reference ref;
    double now = 0.0;
    int id = 0;
    for (int i = 0; i < 200; ++i) {
        const double t = rng.uniform(0.0, 5.0);
        cal.push(t, id);
        ref.push(t, id);
        ++id;
    }
    // Drain halfway, then push events at/before the current minimum —
    // a priority queue allows it, so the calendar must too.
    for (int i = 0; i < 100; ++i) {
        const RefEntry want = ref.pop();
        const EventCalendar<int>::Entry got = cal.pop();
        ASSERT_EQ(got.order, want.order);
        now = want.time;
    }
    for (int i = 0; i < 100; ++i) {
        const double t = now - rng.uniform(0.0, 2.0);
        cal.push(t, id);
        ref.push(t, id);
        ++id;
    }
    expectSameDrain(cal, ref);
}

TEST(EventCalendar, ExtremeAndDenseTimesStaySorted)
{
    EventCalendar<int> cal(1e-3, 64);
    Reference ref;
    const double ts[] = {0.0,  1e-12, 1e-9, 3600.0, 1e6,  1e12,
                         1e300, 5e-4, 5e-4, 2.5,    1e300, 0.0,
                         7.0};
    int id = 0;
    for (double t : ts) {
        cal.push(t, id);
        ref.push(t, id);
        ++id;
    }
    // Dense same-bucket cluster to exercise the self-tuning rebuild.
    Rng rng(7);
    for (int i = 0; i < 600; ++i) {
        const double t = 42.0 + rng.uniform(0.0, 1e-4);
        cal.push(t, id);
        ref.push(t, id);
        ++id;
    }
    expectSameDrain(cal, ref);
}

TEST(EventCalendar, InterleavedPushPopMatchesReference)
{
    Rng rng(31);
    EventCalendar<int> cal(5e-2, 128);
    Reference ref;
    int id = 0;
    double horizon = 0.0;
    for (int step = 0; step < 5000; ++step) {
        const bool push =
            ref.empty() || rng.bernoulli(0.55);
        if (push) {
            // Mostly near-future (the serving pattern), occasionally
            // far ahead so the far heap and drainFar() run.
            const double t = rng.bernoulli(0.05)
                ? horizon + rng.uniform(50.0, 5000.0)
                : horizon + rng.uniform(0.0, 0.5);
            cal.push(t, id);
            ref.push(t, id);
            ++id;
        } else {
            const RefEntry want = ref.pop();
            const EventCalendar<int>::Entry got = cal.pop();
            ASSERT_EQ(got.time, want.time);
            ASSERT_EQ(got.order, want.order);
            ASSERT_EQ(got.payload, want.payload);
            horizon = want.time;
        }
    }
    expectSameDrain(cal, ref);
}

TEST(EventCalendar, NextOrderInterleavesWithPushes)
{
    // A parked event stamped via nextOrder() must sort among pushed
    // events exactly where a push at the same moment would have: the
    // simulator's per-engine slots rely on this.
    EventCalendar<int> cal(1e-3, 64);
    cal.push(1.0, 0);                            // order 0
    const std::uint64_t parked = cal.nextOrder(); // order 1
    cal.push(1.0, 2);                            // order 2
    EXPECT_EQ(parked, 1u);

    // The parked key (1.0, 1) beats the pushed (1.0, 2) but not
    // (1.0, 0) under the calendar's own comparator.
    const EventCalendar<int>::Key parked_key{1.0, parked};
    EventCalendar<int>::Key head = cal.peekKey();
    EXPECT_TRUE(head < parked_key); // (1.0, 0) first
    const EventCalendar<int>::Entry first = cal.pop();
    EXPECT_EQ(first.payload, 0);
    head = cal.peekKey();
    EXPECT_TRUE(parked_key < head); // parked beats (1.0, 2)
    const EventCalendar<int>::Entry second = cal.pop();
    EXPECT_EQ(second.payload, 2);
    EXPECT_TRUE(cal.empty());
}

TEST(EventCalendar, PeekKeyMatchesPopAfterWindowJump)
{
    // Regression: peekKey() must index the bucket located *after*
    // locateBest() advances the window, not the stale scan bucket.
    EventCalendar<int> cal(1e-3, 64);
    cal.push(0.010, 1);
    cal.push(50.0, 2); // lands in the far heap first
    const EventCalendar<int>::Key k1 = cal.peekKey();
    EXPECT_EQ(k1.time, 0.010);
    EXPECT_EQ(cal.pop().payload, 1);
    const EventCalendar<int>::Key k2 = cal.peekKey();
    EXPECT_EQ(k2.time, 50.0);
    EXPECT_EQ(cal.pop().payload, 2);
}

} // namespace
} // namespace dsv3
