/**
 * @file
 * Tests for the deterministic RNG: reproducibility, distribution
 * moments, bounded sampling, and hash mixing.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.hh"

namespace dsv3 {
namespace {

TEST(Rng, SameSeedSameStream)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += a.nextU64() == b.nextU64();
    EXPECT_LT(equal, 3);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        double x = rng.nextDouble();
        EXPECT_GE(x, 0.0);
        EXPECT_LT(x, 1.0);
    }
}

TEST(Rng, NextDoubleMeanNearHalf)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.nextDouble();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BoundedStaysInBound)
{
    Rng rng(13);
    for (std::uint64_t bound : {1ull, 2ull, 7ull, 100ull, 12345ull}) {
        for (int i = 0; i < 1000; ++i)
            EXPECT_LT(rng.nextBounded(bound), bound);
    }
}

TEST(Rng, BoundedCoversRange)
{
    Rng rng(17);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.nextBounded(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NormalMoments)
{
    Rng rng(19);
    const int n = 100000;
    double sum = 0.0, sum_sq = 0.0;
    for (int i = 0; i < n; ++i) {
        double x = rng.normal(3.0, 2.0);
        sum += x;
        sum_sq += x * x;
    }
    double mean = sum / n;
    double var = sum_sq / n - mean * mean;
    EXPECT_NEAR(mean, 3.0, 0.05);
    EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, GumbelMeanIsEulerGamma)
{
    Rng rng(23);
    const int n = 200000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += rng.gumbel();
    EXPECT_NEAR(sum / n, 0.5772, 0.02);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(29);
    const int n = 100000;
    int hits = 0;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR((double)hits / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(31);
    const int n = 100000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(4.0);
    EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Hash, HashU64Deterministic)
{
    EXPECT_EQ(hashU64(42), hashU64(42));
    EXPECT_NE(hashU64(42), hashU64(43));
}

TEST(Hash, CombineOrderMatters)
{
    std::uint64_t a = hashCombine(hashU64(1), 2);
    std::uint64_t b = hashCombine(hashU64(2), 1);
    EXPECT_NE(a, b);
}

TEST(Hash, AvalancheOnLowBits)
{
    // Flipping the lowest input bit should flip ~half the output bits.
    int flipped = __builtin_popcountll(hashU64(100) ^ hashU64(101));
    EXPECT_GT(flipped, 16);
    EXPECT_LT(flipped, 48);
}

} // namespace
} // namespace dsv3
