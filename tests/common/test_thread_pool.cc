/**
 * @file
 * Tests for the thread pool and parallelFor helper.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.hh"
#include "obs/registry.hh"

namespace dsv3 {
namespace {

TEST(ThreadPool, RunsSubmittedTasks)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    std::mutex mu;
    std::condition_variable cv;
    for (int i = 0; i < 16; ++i) {
        pool.submit([&] {
            if (ran.fetch_add(1) + 1 == 16) {
                std::lock_guard<std::mutex> lock(mu);
                cv.notify_all();
            }
        });
    }
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return ran.load() == 16; });
    EXPECT_EQ(ran.load(), 16);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce)
{
    const std::size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    parallelFor(n, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ParallelFor, ZeroAndOneIterations)
{
    int calls = 0;
    parallelFor(0, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    parallelFor(1, [&](std::size_t i) {
        EXPECT_EQ(i, 0u);
        ++calls;
    });
    EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, NestedDoesNotDeadlock)
{
    std::atomic<int> inner{0};
    parallelFor(4, [&](std::size_t) {
        parallelFor(4, [&](std::size_t) { inner.fetch_add(1); });
    });
    EXPECT_EQ(inner.load(), 16);
}

TEST(ParallelFor, PropagatesException)
{
    EXPECT_THROW(
        parallelFor(8,
                    [&](std::size_t i) {
                        if (i == 3)
                            throw std::runtime_error("boom");
                    }),
        std::runtime_error);
}

TEST(ParallelFor, PropagatesFirstExceptionAndCountsRest)
{
    obs::Counter &rethrown = obs::Registry::global().counter(
        "common.pool.errors_rethrown");
    obs::Counter &swallowed = obs::Registry::global().counter(
        "common.pool.errors_swallowed");
    const std::uint64_t rethrown0 = rethrown.value();
    const std::uint64_t swallowed0 = swallowed.value();

    // Every iteration throws: exactly one is rethrown, the other n-1
    // are swallowed-but-counted.
    const std::size_t n = 16;
    EXPECT_THROW(parallelFor(n,
                             [&](std::size_t) {
                                 throw std::runtime_error("boom");
                             }),
                 std::runtime_error);
    EXPECT_EQ(rethrown.value(), rethrown0 + 1);
    EXPECT_EQ(swallowed.value(), swallowed0 + n - 1);
}

TEST(ThreadPool, SubmittedTaskExceptionDoesNotTerminate)
{
    obs::Counter &failed = obs::Registry::global().counter(
        "common.pool.tasks_failed");
    const std::uint64_t failed0 = failed.value();

    // One worker, so the throwing task fully finishes (and bumps the
    // counter) before the follow-up task can run.
    ThreadPool pool(1);
    std::atomic<int> done{0};
    std::mutex mu;
    std::condition_variable cv;
    pool.submit([] { throw std::runtime_error("escaped"); });
    // A follow-up task still runs: the worker survived the throw.
    pool.submit([&] {
        done.store(1);
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
    });
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done.load() == 1; });
    EXPECT_EQ(failed.value(), failed0 + 1);
}

TEST(ThreadPool, RegistersRunAndQueueStats)
{
    obs::Counter &run = obs::Registry::global().counter(
        "common.pool.tasks_run");
    const std::uint64_t run0 = run.value();
    parallelFor(64, [](std::size_t) {});
    // The calling thread may have done all the work, but helper tasks
    // were at least submitted and eventually run; check the counter
    // kept its monotone contract rather than an exact figure.
    EXPECT_GE(run.value(), run0);
    EXPECT_GE(obs::Registry::global()
                  .gauge("common.pool.threads")
                  .value(),
              0.0);
}

TEST(ParallelFor, ResultsIndependentOfScheduling)
{
    // Sum via per-index slots: identical no matter which thread runs
    // which index.
    const std::size_t n = 64;
    std::vector<double> out(n, 0.0);
    parallelFor(n, [&](std::size_t i) { out[i] = (double)(i * i); });
    double sum = 0.0;
    for (double v : out)
        sum += v;
    EXPECT_DOUBLE_EQ(sum, (double)((n - 1) * n * (2 * n - 1)) / 6.0);
}

} // namespace
} // namespace dsv3
