/**
 * @file
 * Tests for RunningStat, percentile, Histogram and fairness metrics.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/stats.hh"

namespace dsv3 {
namespace {

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, SingleValue)
{
    RunningStat s;
    s.add(5.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_EQ(s.mean(), 5.0);
    EXPECT_EQ(s.min(), 5.0);
    EXPECT_EQ(s.max(), 5.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, KnownSequence)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
    // Sample variance with n-1 denominator: 32 / 7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(RunningStat, MatchesTwoPassComputation)
{
    std::vector<double> xs;
    RunningStat s;
    for (int i = 0; i < 1000; ++i) {
        double x = std::sin((double)i) * 100.0;
        xs.push_back(x);
        s.add(x);
    }
    double mean = 0.0;
    for (double x : xs)
        mean += x;
    mean /= (double)xs.size();
    double var = 0.0;
    for (double x : xs)
        var += (x - mean) * (x - mean);
    var /= (double)(xs.size() - 1);
    EXPECT_NEAR(s.mean(), mean, 1e-9);
    EXPECT_NEAR(s.variance(), var, 1e-6);
}

TEST(Percentile, Endpoints)
{
    std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100.0), 4.0);
}

TEST(Percentile, Median)
{
    std::vector<double> odd = {1.0, 5.0, 9.0};
    EXPECT_DOUBLE_EQ(percentile(odd, 50.0), 5.0);
    std::vector<double> even = {1.0, 3.0, 5.0, 9.0};
    EXPECT_DOUBLE_EQ(percentile(even, 50.0), 4.0);
}

TEST(Percentile, SingleElement)
{
    std::vector<double> v = {42.0};
    EXPECT_DOUBLE_EQ(percentile(v, 25.0), 42.0);
}

TEST(Histogram, BinningAndOutOfRangeTracking)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);   // bin 0
    h.add(9.5);   // bin 9
    h.add(-5.0);  // underflow, not bin 0
    h.add(25.0);  // overflow, not bin 9
    h.add(5.0);   // bin 5
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(9), 1u);
    EXPECT_EQ(h.count(5), 1u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.total(), 5u);
    EXPECT_DOUBLE_EQ(h.fraction(5), 0.2);
}

TEST(Histogram, TailBinsNotSkewedByOutliers)
{
    // Regression: out-of-range samples used to clamp into the edge
    // bins, inflating the tail fractions they are meant to measure.
    Histogram h(0.0, 1.0, 4);
    h.add(0.99); // genuine tail sample, bin 3
    for (int i = 0; i < 9; ++i)
        h.add(2.0); // outliers
    EXPECT_EQ(h.count(3), 1u);
    EXPECT_EQ(h.overflow(), 9u);
    EXPECT_DOUBLE_EQ(h.fraction(3), 0.1);
}

TEST(Histogram, UpperEdgeIsExclusive)
{
    Histogram h(0.0, 10.0, 10);
    h.add(10.0); // == hi: outside the half-open range
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.count(9), 0u);
    h.add(0.0); // == lo: inside
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.underflow(), 0u);
}

TEST(Histogram, BinEdges)
{
    Histogram h(10.0, 20.0, 5);
    EXPECT_DOUBLE_EQ(h.binLo(0), 10.0);
    EXPECT_DOUBLE_EQ(h.binLo(4), 18.0);
}

TEST(P2Quantile, ExactBelowFiveSamples)
{
    // Below five samples value() is percentile() over the retained
    // prefix, i.e. the exact interpolated order statistic.
    P2Quantile q50(0.50);
    for (double x : {7.0, 1.0, 5.0})
        q50.add(x);
    EXPECT_DOUBLE_EQ(q50.value(), 5.0);

    P2Quantile q99(0.99);
    std::vector<double> sorted = {1.0, 3.0, 5.0, 7.0};
    for (double x : {7.0, 1.0, 5.0, 3.0})
        q99.add(x);
    EXPECT_DOUBLE_EQ(q99.value(), percentile(sorted, 99.0));

    P2Quantile q2(0.50);
    q2.add(4.0);
    q2.add(2.0);
    EXPECT_DOUBLE_EQ(q2.value(), 3.0); // interpolated median of {2, 4}

    // At exactly five samples the markers are the sorted sample set
    // and the middle marker is the exact median.
    P2Quantile q5(0.50);
    for (double x : {7.0, 1.0, 5.0, 3.0, 9.0})
        q5.add(x);
    EXPECT_EQ(q5.count(), 5u);
    EXPECT_DOUBLE_EQ(q5.value(), 5.0);
}

TEST(P2Quantile, EmptyIsZero)
{
    P2Quantile q(0.95);
    EXPECT_EQ(q.count(), 0u);
    EXPECT_DOUBLE_EQ(q.value(), 0.0);
    EXPECT_DOUBLE_EQ(q.quantile(), 0.95);
}

namespace {

/** Deterministic xorshift stream in [0, 1). */
double
nextUniform(std::uint64_t &state)
{
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return (double)(state >> 11) / 9007199254740992.0;
}

/** Sketch-vs-exact error for @p n samples drawn by @p draw. */
double
p2Error(double p, std::size_t n,
        const std::function<double(std::uint64_t &)> &draw)
{
    P2Quantile sketch(p);
    std::vector<double> exact;
    exact.reserve(n);
    std::uint64_t state = 0x9e3779b97f4a7c15ull;
    for (std::size_t i = 0; i < n; ++i) {
        double x = draw(state);
        sketch.add(x);
        exact.push_back(x);
    }
    std::sort(exact.begin(), exact.end());
    return std::abs(sketch.value() - percentile(exact, p * 100.0));
}

} // namespace

TEST(P2Quantile, TracksExactSortWithinBounds)
{
    // Regression bounds for the streaming sketch against a full sort
    // on 10k samples. The bounds are loose enough to be robust to
    // marker-update details but tight enough to catch a broken
    // parabolic update (which drifts by O(range)).
    auto uniform = [](std::uint64_t &s) { return nextUniform(s); };
    EXPECT_LT(p2Error(0.50, 10000, uniform), 0.02);
    EXPECT_LT(p2Error(0.95, 10000, uniform), 0.02);
    EXPECT_LT(p2Error(0.99, 10000, uniform), 0.02);

    // Exponential tail: heavier stress on the upper markers.
    auto expo = [](std::uint64_t &s) {
        return -std::log(1.0 - nextUniform(s));
    };
    EXPECT_LT(p2Error(0.50, 10000, expo), 0.05);
    EXPECT_LT(p2Error(0.99, 10000, expo), 0.5);
}

TEST(Fairness, JainPerfectBalance)
{
    EXPECT_DOUBLE_EQ(jainFairness({3.0, 3.0, 3.0}), 1.0);
}

TEST(Fairness, JainWorstCase)
{
    // All load on one of n entities -> 1/n.
    EXPECT_NEAR(jainFairness({4.0, 0.0, 0.0, 0.0}), 0.25, 1e-12);
}

TEST(Fairness, JainEmptyAndZero)
{
    EXPECT_DOUBLE_EQ(jainFairness({}), 1.0);
    EXPECT_DOUBLE_EQ(jainFairness({0.0, 0.0}), 1.0);
}

TEST(Fairness, MaxOverMean)
{
    EXPECT_DOUBLE_EQ(maxOverMean({1.0, 1.0, 4.0}), 2.0);
    EXPECT_DOUBLE_EQ(maxOverMean({2.0, 2.0}), 1.0);
}

} // namespace
} // namespace dsv3
