/**
 * @file
 * Tests for the ASCII table renderer.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/table.hh"

namespace dsv3 {
namespace {

TEST(Table, RenderContainsTitleHeaderAndCells)
{
    Table t("My Title");
    t.setHeader({"A", "B"});
    t.addRow({"one", "two"});
    std::string out = t.render();
    EXPECT_NE(out.find("My Title"), std::string::npos);
    EXPECT_NE(out.find("A"), std::string::npos);
    EXPECT_NE(out.find("one"), std::string::npos);
    EXPECT_NE(out.find("two"), std::string::npos);
}

TEST(Table, RowsPaddedToHeaderWidth)
{
    Table t;
    t.setHeader({"A", "B", "C"});
    t.addRow({"only-one"});
    EXPECT_EQ(t.rowCount(), 1u);
    EXPECT_EQ(t.cell(0, 0), "only-one");
    EXPECT_EQ(t.cell(0, 2), "");
}

TEST(Table, CsvQuotesCommas)
{
    Table t;
    t.setHeader({"name", "value"});
    t.addRow({"a,b", "3"});
    std::string csv = t.renderCsv();
    EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
    EXPECT_NE(csv.find("name,value"), std::string::npos);
}

TEST(Table, CsvRowPerLine)
{
    Table t;
    t.setHeader({"x"});
    t.addRow({"1"});
    t.addRow({"2"});
    std::string csv = t.renderCsv();
    EXPECT_EQ((int)std::count(csv.begin(), csv.end(), '\n'), 3);
}

TEST(Table, FormatHelpers)
{
    EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
    EXPECT_EQ(Table::fmt(2.0, 0), "2");
    EXPECT_EQ(Table::fmtInt(1234567), "1,234,567");
    EXPECT_EQ(Table::fmtPercent(0.4373), "43.73%");
    EXPECT_EQ(Table::fmtPercent(0.5, 0), "50%");
}

TEST(Table, ColumnsAlign)
{
    Table t;
    t.setHeader({"col", "wide-column"});
    t.addRow({"a-very-long-cell", "x"});
    std::string out = t.render();
    // Every rendered line should have the same width.
    std::size_t first_len = out.find('\n');
    std::size_t pos = 0;
    while (pos < out.size()) {
        std::size_t next = out.find('\n', pos);
        if (next == std::string::npos)
            break;
        EXPECT_EQ(next - pos, first_len);
        pos = next + 1;
    }
}

TEST(Table, EmptyTableRenders)
{
    Table t("empty");
    std::string out = t.render();
    EXPECT_NE(out.find("empty"), std::string::npos);
}

} // namespace
} // namespace dsv3
