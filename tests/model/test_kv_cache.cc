/**
 * @file
 * Tests for the KV-cache model, including the exact Table 1 numbers.
 */

#include <gtest/gtest.h>

#include "model/config.hh"
#include "model/kv_cache.hh"

namespace dsv3::model {
namespace {

TEST(KvCache, Table1DeepSeekV3Exact)
{
    // Paper Table 1: 70.272 KB per token.
    EXPECT_DOUBLE_EQ(kvCacheBytesPerToken(deepSeekV3()), 70272.0);
}

TEST(KvCache, Table1Qwen72BExact)
{
    // Paper Table 1: 327.680 KB per token.
    EXPECT_DOUBLE_EQ(kvCacheBytesPerToken(qwen25_72B()), 327680.0);
}

TEST(KvCache, Table1Llama405BExact)
{
    // Paper Table 1: 516.096 KB per token.
    EXPECT_DOUBLE_EQ(kvCacheBytesPerToken(llama31_405B()), 516096.0);
}

TEST(KvCache, Table1Multipliers)
{
    double mla = kvCacheBytesPerToken(deepSeekV3());
    EXPECT_NEAR(kvCacheBytesPerToken(qwen25_72B()) / mla, 4.66, 0.01);
    EXPECT_NEAR(kvCacheBytesPerToken(llama31_405B()) / mla, 7.34,
                0.01);
}

TEST(KvCache, MlaFormula)
{
    ModelConfig cfg = deepSeekV3();
    // (kvLoraRank + ropeDim) * layers * 2 bytes.
    EXPECT_DOUBLE_EQ(kvCacheBytesPerToken(cfg),
                     (512.0 + 64.0) * 61.0 * 2.0);
}

TEST(KvCache, GqaScalesWithKvHeads)
{
    ModelConfig cfg = qwen25_72B();
    double base = kvCacheBytesPerToken(cfg);
    cfg.attn.kvHeads = 16;
    EXPECT_DOUBLE_EQ(kvCacheBytesPerToken(cfg), base * 2.0);
}

TEST(KvCache, MqaUsesOneHead)
{
    ModelConfig cfg = qwen25_72B();
    cfg.attn.kind = AttentionKind::MQA;
    // One K head (128) + one V head (128) per layer, BF16.
    EXPECT_DOUBLE_EQ(kvCacheBytesPerToken(cfg),
                     (128.0 + 128.0) * 80.0 * 2.0);
}

TEST(KvCache, MhaIsKvHeadsTimesMqa)
{
    ModelConfig cfg = dense7B(); // MHA with 32 heads
    ModelConfig mqa = cfg;
    mqa.attn.kind = AttentionKind::MQA;
    EXPECT_DOUBLE_EQ(kvCacheBytesPerToken(cfg),
                     32.0 * kvCacheBytesPerToken(mqa));
}

TEST(KvCache, Fp8HalvesBytes)
{
    ModelConfig cfg = deepSeekV3();
    EXPECT_DOUBLE_EQ(kvCacheBytesPerToken(cfg, 1),
                     kvCacheBytesPerToken(cfg, 2) / 2.0);
}

TEST(KvCache, ContextScalesLinearly)
{
    ModelConfig cfg = deepSeekV3();
    EXPECT_DOUBLE_EQ(kvCacheBytes(cfg, 1000),
                     1000.0 * kvCacheBytesPerToken(cfg));
}

TEST(KvCache, MaxContextTokens)
{
    ModelConfig cfg = deepSeekV3();
    // 70,272 B/token in a 70.272 MB budget -> exactly 1000 tokens.
    EXPECT_EQ(maxContextTokens(cfg, 70.272e6), 1000u);
}

TEST(KvCache, MlaVsGqaAdvantageGrowsWithHeads)
{
    // MLA cache size is independent of head count; GQA's grows.
    ModelConfig mla = deepSeekV3();
    double before = kvCacheBytesPerToken(mla);
    mla.attn.heads = 256;
    mla.attn.kvHeads = 256;
    EXPECT_DOUBLE_EQ(kvCacheBytesPerToken(mla), before);
}

} // namespace
} // namespace dsv3::model
