/**
 * @file
 * Tests for the attention references — most importantly the numerical
 * equivalence between MLA's cached-latent decode and the explicit
 * per-head K/V materialization, which is what justifies Table 1's
 * cache sizes.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "model/attention_ref.hh"

namespace dsv3::model {
namespace {

std::vector<double>
randomToken(std::size_t hidden, Rng &rng)
{
    std::vector<double> x(hidden);
    for (auto &v : x)
        v = rng.normal();
    return x;
}

double
maxAbsDiff(const std::vector<double> &a, const std::vector<double> &b)
{
    EXPECT_EQ(a.size(), b.size());
    double worst = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        worst = std::max(worst, std::fabs(a[i] - b[i]));
    return worst;
}

TEST(AttendOne, UniformScoresAverageValues)
{
    // Orthogonal query -> all scores equal -> output = mean of V.
    Matrix keys(2, 2);
    keys.at(0, 0) = 1.0;
    keys.at(1, 1) = 1.0;
    Matrix values(2, 1);
    values.at(0, 0) = 2.0;
    values.at(1, 0) = 6.0;
    std::vector<double> q = {0.0, 0.0};
    auto out = attendOne(keys, values, q);
    EXPECT_NEAR(out[0], 4.0, 1e-12);
}

TEST(AttendOne, SharpQueryPicksNearestKey)
{
    Matrix keys(2, 2);
    keys.at(0, 0) = 1.0;
    keys.at(1, 1) = 1.0;
    Matrix values(2, 1);
    values.at(0, 0) = 2.0;
    values.at(1, 0) = 6.0;
    std::vector<double> q = {100.0, 0.0};
    auto out = attendOne(keys, values, q);
    EXPECT_NEAR(out[0], 2.0, 1e-9);
}

TEST(MlaEquivalence, CachedLatentMatchesExplicit)
{
    // The paper's core MLA property: caching only (c_kv, k_rope)
    // computes the same attention as materializing all K/V heads.
    const std::size_t hidden = 64;
    MlaReference cached(hidden, 4, 16, 8, 12, 10, 99);
    MlaReference explicit_ref(hidden, 4, 16, 8, 12, 10, 99);
    Rng rng(1);
    for (int t = 0; t < 12; ++t) {
        auto x = randomToken(hidden, rng);
        auto a = cached.decode(x);
        auto b = explicit_ref.decodeExplicit(x, /*append=*/true);
        EXPECT_LT(maxAbsDiff(a, b), 1e-9) << "token " << t;
    }
}

TEST(MlaEquivalence, SameObjectBothPaths)
{
    const std::size_t hidden = 32;
    MlaReference mla(hidden, 2, 8, 4, 6, 5, 7);
    Rng rng(2);
    for (int t = 0; t < 5; ++t)
        mla.decode(randomToken(hidden, rng));
    // Query the existing history through both paths (no append).
    auto x = randomToken(hidden, rng);
    // decode() appends; so compare explicit first, then a fresh
    // object for the cached path.
    auto explicit_out = mla.decodeExplicit(x, /*append=*/false);
    MlaReference replay(hidden, 2, 8, 4, 6, 5, 7);
    Rng rng2(2);
    std::vector<double> last;
    for (int t = 0; t < 5; ++t)
        replay.decode(randomToken(hidden, rng2));
    // Not directly comparable (decode appends x) -- instead verify the
    // explicit no-append result is finite and sized correctly.
    EXPECT_EQ(explicit_out.size(), hidden);
    for (double v : explicit_out)
        EXPECT_TRUE(std::isfinite(v));
}

TEST(MlaCache, BytesMatchTable1Formula)
{
    // DeepSeek-V3 shape: rank 512 + rope 64 at BF16 = 1152 B per
    // token per layer; heads do not matter.
    MlaReference mla(128, 8, 512, 64, 128, 128, 3);
    Rng rng(3);
    for (int t = 0; t < 3; ++t)
        mla.decode(randomToken(128, rng));
    EXPECT_EQ(mla.cacheBytes(2), (512u + 64u) * 3u * 2u);
}

TEST(MlaCache, CompressionRatioVsExplicit)
{
    // With V3-like dims the latent cache is far smaller than per-head
    // K/V: heads*(nope+rope+v) vs (rank+rope).
    MlaReference mla(256, 128, 512, 64, 128, 128, 4);
    Rng rng(4);
    mla.decode(randomToken(256, rng));
    double ratio = (double)mla.explicitCacheBytes() /
                   (double)mla.cacheBytes();
    // 128*(128+64+128) / (512+64) = 40960/576 ~= 71x.
    EXPECT_NEAR(ratio, 71.1, 0.5);
}

TEST(GqaCache, BytesMatchClosedForm)
{
    GqaReference gqa(64, 8, 2, 16, 5);
    Rng rng(5);
    for (int t = 0; t < 4; ++t)
        gqa.decode(randomToken(64, rng));
    // 2 (K+V) * kvHeads * headDim * tokens * bytes.
    EXPECT_EQ(gqa.cacheBytes(2), 2u * 2u * 16u * 4u * 2u);
}

TEST(GqaReference, OutputsFiniteAndSized)
{
    GqaReference gqa(48, 6, 3, 8, 6);
    Rng rng(6);
    for (int t = 0; t < 6; ++t) {
        auto out = gqa.decode(randomToken(48, rng));
        EXPECT_EQ(out.size(), 48u);
        for (double v : out)
            EXPECT_TRUE(std::isfinite(v));
    }
}

TEST(GqaReference, MqaIsSingleKvHead)
{
    GqaReference mqa(32, 4, 1, 8, 7);
    Rng rng(7);
    mqa.decode(randomToken(32, rng));
    EXPECT_EQ(mqa.cacheBytes(2), 2u * 1u * 8u * 1u * 2u);
}

TEST(GqaReference, AttentionIsHistoryDependent)
{
    GqaReference gqa(32, 4, 4, 8, 8);
    Rng rng(8);
    auto x = randomToken(32, rng);
    auto first = gqa.decode(x);
    gqa.decode(randomToken(32, rng));
    auto third = gqa.decode(x); // same token, longer history
    EXPECT_GT(maxAbsDiff(first, third), 1e-9);
}

/** Equivalence must hold across MLA shapes. */
struct MlaShape
{
    std::size_t hidden, heads, rank, rope, nope, vdim;
};

class MlaShapeTest : public ::testing::TestWithParam<MlaShape>
{};

TEST_P(MlaShapeTest, CachedMatchesExplicit)
{
    MlaShape s = GetParam();
    MlaReference cached(s.hidden, s.heads, s.rank, s.rope, s.nope,
                        s.vdim, 11);
    MlaReference explicit_ref(s.hidden, s.heads, s.rank, s.rope,
                              s.nope, s.vdim, 11);
    Rng rng(12);
    for (int t = 0; t < 6; ++t) {
        auto x = randomToken(s.hidden, rng);
        EXPECT_LT(maxAbsDiff(cached.decode(x),
                             explicit_ref.decodeExplicit(x, true)),
                  1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MlaShapeTest,
    ::testing::Values(MlaShape{32, 1, 8, 4, 8, 8},
                      MlaShape{64, 4, 16, 8, 12, 10},
                      MlaShape{96, 8, 24, 6, 16, 12},
                      MlaShape{128, 2, 32, 16, 24, 24}));

} // namespace
} // namespace dsv3::model
