/**
 * @file
 * Tests for parameter counting: presets must reproduce the published
 * total/activated sizes.
 */

#include <gtest/gtest.h>

#include "model/config.hh"
#include "model/params.hh"

namespace dsv3::model {
namespace {

TEST(Params, DeepSeekV3Total671B)
{
    ParamCounts p = countParams(deepSeekV3());
    EXPECT_NEAR(p.total() / 1e9, 671.0, 5.0);
}

TEST(Params, DeepSeekV3Active37B)
{
    ModelConfig cfg = deepSeekV3();
    ParamCounts p = countParams(cfg);
    EXPECT_NEAR(p.activePerToken(cfg) / 1e9, 37.0, 1.0);
}

TEST(Params, DeepSeekV2Total236B)
{
    ParamCounts p = countParams(deepSeekV2());
    EXPECT_NEAR(p.total() / 1e9, 236.0, 3.0);
}

TEST(Params, DeepSeekV2Active21B)
{
    ModelConfig cfg = deepSeekV2();
    ParamCounts p = countParams(cfg);
    EXPECT_NEAR(p.activePerToken(cfg) / 1e9, 21.0, 0.7);
}

TEST(Params, Qwen72BTotal)
{
    ParamCounts p = countParams(qwen25_72B());
    EXPECT_NEAR(p.total() / 1e9, 72.7, 1.5);
}

TEST(Params, Llama405BTotal)
{
    ParamCounts p = countParams(llama31_405B());
    EXPECT_NEAR(p.total() / 1e9, 405.0, 4.0);
}

TEST(Params, DenseModelFullyActive)
{
    ModelConfig cfg = qwen25_72B();
    ParamCounts p = countParams(cfg);
    EXPECT_DOUBLE_EQ(p.total(), p.activePerToken(cfg));
    EXPECT_DOUBLE_EQ(p.moeRouted, 0.0);
    EXPECT_DOUBLE_EQ(p.gate, 0.0);
}

TEST(Params, MoeRoutedDominatesV3)
{
    ParamCounts p = countParams(deepSeekV3());
    EXPECT_GT(p.moeRouted / p.total(), 0.9);
}

TEST(Params, ActiveScalesWithTopK)
{
    ModelConfig cfg = deepSeekV3();
    ParamCounts p = countParams(cfg);
    double base = p.activePerToken(cfg);
    cfg.moe->topK = 16;
    double doubled = p.activePerToken(cfg);
    // Doubling topK adds exactly one more 8-expert slice.
    double slice = p.moeRouted * 8.0 / 256.0;
    EXPECT_NEAR(doubled - base, slice, 1e6);
}

TEST(Params, MatmulActiveExcludesEmbedding)
{
    ModelConfig cfg = deepSeekV3();
    ParamCounts p = countParams(cfg);
    EXPECT_NEAR(p.activePerToken(cfg) - p.matmulActivePerToken(cfg),
                p.embedding + p.norms, 1.0);
}

TEST(Params, TiedEmbeddingsDropLmHead)
{
    ModelConfig cfg = dense7B();
    ParamCounts untied = countParams(cfg);
    cfg.tiedEmbeddings = true;
    ParamCounts tied = countParams(cfg);
    EXPECT_DOUBLE_EQ(untied.total() - tied.total(), untied.lmHead);
    EXPECT_DOUBLE_EQ(tied.lmHead, 0.0);
}

TEST(Params, MlaAttentionSmallerThanMhaEquivalent)
{
    // MLA's low-rank projections use fewer parameters than full MHA
    // with the same head count at DeepSeek-V3 scale.
    ModelConfig mla = deepSeekV3();
    ModelConfig mha = mla;
    mha.attn.kind = AttentionKind::MHA;
    mha.attn.headDim = 128;
    mha.attn.vHeadDim = 128;
    mha.attn.kvHeads = mha.attn.heads;
    EXPECT_LT(countParams(mla).attention, countParams(mha).attention);
}

TEST(Params, Dense7BIsAbout7B)
{
    ParamCounts p = countParams(dense7B());
    EXPECT_NEAR(p.total() / 1e9, 7.0, 1.0);
}

TEST(Params, MoeLayerAccounting)
{
    ModelConfig cfg = deepSeekV3();
    EXPECT_EQ(cfg.moeLayers(), 58u);
    EXPECT_EQ(cfg.denseFfnLayers(), 3u);
    ModelConfig dense = qwen25_72B();
    EXPECT_EQ(dense.moeLayers(), 0u);
    EXPECT_EQ(dense.denseFfnLayers(), 80u);
}

} // namespace
} // namespace dsv3::model
