/**
 * @file
 * Tests for model/hardware configuration presets.
 */

#include <gtest/gtest.h>

#include "model/config.hh"
#include "model/hardware.hh"

namespace dsv3::model {
namespace {

TEST(Config, DeepSeekV3Preset)
{
    ModelConfig cfg = deepSeekV3();
    EXPECT_EQ(cfg.hidden, 7168u);
    EXPECT_EQ(cfg.layers, 61u);
    EXPECT_EQ(cfg.attn.kind, AttentionKind::MLA);
    EXPECT_EQ(cfg.attn.kvLoraRank, 512u);
    EXPECT_EQ(cfg.attn.qkRopeHeadDim, 64u);
    ASSERT_TRUE(cfg.moe.has_value());
    EXPECT_EQ(cfg.moe->routedExperts, 256u);
    EXPECT_EQ(cfg.moe->topK, 8u);
    EXPECT_EQ(cfg.moe->groups, 8u);
    EXPECT_EQ(cfg.moe->topKGroups, 4u);
    EXPECT_EQ(cfg.moe->sharedExperts, 1u);
}

TEST(Config, DeepSeekV2Preset)
{
    ModelConfig cfg = deepSeekV2();
    EXPECT_EQ(cfg.hidden, 5120u);
    EXPECT_EQ(cfg.layers, 60u);
    ASSERT_TRUE(cfg.moe.has_value());
    EXPECT_EQ(cfg.moe->routedExperts, 160u);
    EXPECT_EQ(cfg.moe->topK, 6u);
    EXPECT_EQ(cfg.moe->sharedExperts, 2u);
}

TEST(Config, DensePresetsHaveNoMoe)
{
    EXPECT_FALSE(qwen25_72B().moe.has_value());
    EXPECT_FALSE(llama31_405B().moe.has_value());
    EXPECT_FALSE(dense7B().moe.has_value());
}

TEST(Config, QkDimPerAttentionKind)
{
    AttentionConfig mla = deepSeekV3().attn;
    EXPECT_EQ(mla.qkDim(), 192u); // 128 nope + 64 rope
    AttentionConfig gqa = qwen25_72B().attn;
    EXPECT_EQ(gqa.qkDim(), 128u);
}

TEST(Config, AttentionKindNames)
{
    EXPECT_STREQ(attentionKindName(AttentionKind::MLA), "MLA");
    EXPECT_STREQ(attentionKindName(AttentionKind::GQA), "GQA");
    EXPECT_STREQ(attentionKindName(AttentionKind::MQA), "MQA");
    EXPECT_STREQ(attentionKindName(AttentionKind::MHA), "MHA");
}

TEST(Hardware, H800MatchesPaperNumbers)
{
    NodeSpec node = h800Node();
    EXPECT_EQ(node.gpusPerNode, 8u);
    EXPECT_EQ(node.nicsPerNode, 8u);
    EXPECT_DOUBLE_EQ(node.nicGbps, 400.0);
    // 400 Gbps -> 50 GB/s raw; 40 GB/s effective per Sec 4.3.
    EXPECT_DOUBLE_EQ(node.nicPeakBytesPerSec(), 50e9);
    EXPECT_DOUBLE_EQ(node.nicEffGBs, 40.0);
    // NVLink: 200 GB/s of which ~160 achievable (Sec 4.3).
    EXPECT_DOUBLE_EQ(node.gpu.nvlinkPeakGBs, 200.0);
    EXPECT_DOUBLE_EQ(node.gpu.nvlinkEffGBs, 160.0);
}

TEST(Hardware, BandwidthRatioIsFourToOne)
{
    // "The bandwidth disparity ... is approximately 4:1" (Sec 4.3).
    NodeSpec node = h800Node();
    EXPECT_NEAR(node.gpu.nvlinkEffGBs / node.nicEffGBs, 4.0, 0.01);
}

TEST(Hardware, H100HasFullNvlink)
{
    EXPECT_GT(h100Node().gpu.nvlinkPeakGBs,
              h800Node().gpu.nvlinkPeakGBs);
}

TEST(Hardware, Nvl72Preset)
{
    NodeSpec node = gb200Nvl72Node();
    EXPECT_EQ(node.gpusPerNode, 72u);
    EXPECT_DOUBLE_EQ(node.gpu.nvlinkPeakGBs, 900.0);
}

TEST(Hardware, MfuBaselineConsistent)
{
    // Achieved 432 TFLOPS at 43.73% MFU implies ~989 TFLOPS peak.
    NodeSpec node = h800Node();
    EXPECT_NEAR(432.0 / 0.4373, node.gpu.bf16Tflops, 10.0);
}

} // namespace
} // namespace dsv3::model
