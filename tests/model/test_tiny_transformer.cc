/**
 * @file
 * Tests for the small-model precision-validation pipeline (Sec 2.4).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "model/tiny_transformer.hh"
#include "numerics/error.hh"

namespace dsv3::model {
namespace {

TinyTransformerConfig
smallCfg()
{
    TinyTransformerConfig cfg;
    cfg.hidden = 32;
    cfg.layers = 2;
    cfg.heads = 2;
    cfg.headDim = 8;
    cfg.experts = 4;
    cfg.topK = 2;
    cfg.moeIntermediate = 16;
    return cfg;
}

Matrix
randomInputs(std::size_t tokens, std::size_t hidden,
             std::uint64_t seed)
{
    Rng rng(seed);
    Matrix m(tokens, hidden);
    m.fillNormal(rng);
    return m;
}

TEST(TinyTransformer, DeterministicForward)
{
    TinyTransformer a(smallCfg(), 5), b(smallCfg(), 5);
    Matrix x = randomInputs(8, 32, 1);
    Matrix ya = a.forward(x, Precision::FP64);
    Matrix yb = b.forward(x, Precision::FP64);
    for (std::size_t i = 0; i < ya.data().size(); ++i)
        EXPECT_DOUBLE_EQ(ya.data()[i], yb.data()[i]);
}

TEST(TinyTransformer, OutputShapeMatchesInput)
{
    TinyTransformer model(smallCfg(), 5);
    Matrix x = randomInputs(12, 32, 2);
    Matrix y = model.forward(x, Precision::FP64);
    EXPECT_EQ(y.rows(), 12u);
    EXPECT_EQ(y.cols(), 32u);
    for (double v : y.data())
        EXPECT_TRUE(std::isfinite(v));
}

TEST(TinyTransformer, CausalityEarlyTokensUnaffected)
{
    // Changing a later token must not change earlier outputs.
    TinyTransformer model(smallCfg(), 5);
    Matrix x = randomInputs(8, 32, 3);
    Matrix y1 = model.forward(x, Precision::FP64);
    x.at(7, 0) += 10.0;
    Matrix y2 = model.forward(x, Precision::FP64);
    for (std::size_t t = 0; t < 7; ++t)
        for (std::size_t c = 0; c < 32; ++c)
            EXPECT_DOUBLE_EQ(y1.at(t, c), y2.at(t, c))
                << "token " << t;
    // The changed token's own output does move.
    double diff = 0.0;
    for (std::size_t c = 0; c < 32; ++c)
        diff += std::fabs(y1.at(7, c) - y2.at(7, c));
    EXPECT_GT(diff, 1e-6);
}

TEST(TinyTransformer, PrecisionErrorOrdering)
{
    TinyTransformer model(smallCfg(), 6);
    Matrix x = randomInputs(16, 32, 4);
    Matrix ref = model.forward(x, Precision::FP64);
    double bf16 = numerics::relL2Error(
        model.forward(x, Precision::BF16), ref);
    double fp8 = numerics::relL2Error(
        model.forward(x, Precision::FP8_FINE), ref);
    EXPECT_GT(bf16, 0.0);
    EXPECT_GT(fp8, bf16); // FP8 noisier than BF16
    EXPECT_LT(fp8, 0.25); // but bounded
}

TEST(TinyTransformer, ValidationLossBelowOnePercent)
{
    // The Sec 2.4 headline: model-level loss divergence for the
    // fine-grained FP8 recipe stays in the fraction-of-a-percent
    // regime (the paper reports < 0.25% after training adaptation).
    auto v = validatePrecision(TinyTransformerConfig{}, 32, 7);
    EXPECT_LT(v.fp8FineLossDiff, 0.01);
    EXPECT_LT(v.bf16LossDiff, v.fp8FineLossDiff);
}

TEST(TinyTransformer, LossDiffFarBelowElementError)
{
    // Zero-mean quantization noise cancels in the scalar loss.
    auto v = validatePrecision(TinyTransformerConfig{}, 32, 11);
    EXPECT_LT(v.fp8FineLossDiff, v.fp8FineError / 5.0);
}

TEST(TinyTransformer, PrecisionNames)
{
    EXPECT_STREQ(precisionName(Precision::FP8_FINE),
                 "FP8 fine-grained");
    EXPECT_STREQ(precisionName(Precision::BF16), "BF16");
}

/** Seed sweep: the validation conclusion must be seed-robust. */
class ValidationSeedTest
    : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(ValidationSeedTest, FineGrainedLossBounded)
{
    auto v = validatePrecision(TinyTransformerConfig{}, 24,
                               GetParam());
    EXPECT_LT(v.fp8FineLossDiff, 0.015) << "seed " << GetParam();
    EXPECT_GT(v.fp8FineError, v.bf16Error);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValidationSeedTest,
                         ::testing::Values(3, 7, 11, 13, 42));

} // namespace
} // namespace dsv3::model
