/**
 * @file
 * Tests for the FLOPs model, anchored to Table 2.
 */

#include <gtest/gtest.h>

#include "model/config.hh"
#include "model/flops.hh"

namespace dsv3::model {
namespace {

TEST(Flops, Table2DeepSeekV3)
{
    // Paper: 250 GFLOPS/token.
    EXPECT_NEAR(trainingGflopsPerToken(deepSeekV3(), 4096), 250.0,
                250.0 * 0.03);
}

TEST(Flops, Table2DeepSeekV2)
{
    // Paper: 155 GFLOPS/token.
    EXPECT_NEAR(trainingGflopsPerToken(deepSeekV2(), 4096), 155.0,
                155.0 * 0.03);
}

TEST(Flops, Table2Llama405B)
{
    // Paper: 2448 GFLOPS/token; the 6N-based model lands within 2%.
    EXPECT_NEAR(trainingGflopsPerToken(llama31_405B(), 4096), 2448.0,
                2448.0 * 0.02);
}

TEST(Flops, Table2Qwen72BUpperBand)
{
    // Paper reports 394; the publicly documented Qwen2.5-72B config
    // (hidden 8192, inter 29568, 80 layers) yields ~445 under any
    // standard 6N accounting. Pin our value so regressions surface,
    // and document the paper delta in EXPERIMENTS.md.
    EXPECT_NEAR(trainingGflopsPerToken(qwen25_72B(), 4096), 445.0,
                445.0 * 0.03);
}

TEST(Flops, MoeOrderOfMagnitudeCheaperThanDense)
{
    double moe = trainingGflopsPerToken(deepSeekV3(), 4096);
    double dense = trainingGflopsPerToken(llama31_405B(), 4096);
    EXPECT_GT(dense / moe, 9.0);
}

TEST(Flops, BackwardIsTwiceForward)
{
    auto fl = flopsPerToken(deepSeekV3(), 4096);
    EXPECT_DOUBLE_EQ(fl.backward(), 2.0 * fl.forward());
    EXPECT_DOUBLE_EQ(fl.training(), 3.0 * fl.forward());
}

TEST(Flops, NonCausalAttentionDoublesScoreTerm)
{
    auto causal = flopsPerToken(deepSeekV3(), 4096, true);
    auto full = flopsPerToken(deepSeekV3(), 4096, false);
    EXPECT_DOUBLE_EQ(full.attentionForward,
                     2.0 * causal.attentionForward);
    EXPECT_DOUBLE_EQ(full.linearForward, causal.linearForward);
}

TEST(Flops, AttentionGrowsWithSequence)
{
    auto short_seq = flopsPerToken(deepSeekV3(), 4096);
    auto long_seq = flopsPerToken(deepSeekV3(), 8192);
    EXPECT_DOUBLE_EQ(long_seq.attentionForward,
                     2.0 * short_seq.attentionForward);
    EXPECT_DOUBLE_EQ(long_seq.linearForward,
                     short_seq.linearForward);
}

TEST(Flops, DecodeFlopsGrowWithContext)
{
    double short_ctx = decodeFlopsPerToken(deepSeekV3(), 1024);
    double long_ctx = decodeFlopsPerToken(deepSeekV3(), 65536);
    EXPECT_GT(long_ctx, short_ctx);
    // The linear term is context-independent.
    auto fl = flopsPerToken(deepSeekV3(), 4096);
    EXPECT_GT(short_ctx, fl.linearForward);
}

TEST(Flops, LinearTermMatches6NRule)
{
    // linearForward == 2 * matmul-active params; training == 6N+attn.
    ModelConfig cfg = qwen25_72B();
    auto fl = flopsPerToken(cfg, 4096);
    auto p = countParams(cfg);
    EXPECT_DOUBLE_EQ(fl.linearForward,
                     2.0 * p.matmulActivePerToken(cfg));
}

} // namespace
} // namespace dsv3::model
