/**
 * @file
 * Reproduces the Sec 6.4 memory-semantic ordering analysis (sender
 * fences vs the proposed RAR mechanism) and the Sec 5.2.2 incast /
 * traffic-isolation analysis.
 */

#include "bench_util.hh"

#include "core/report_extensions.hh"
#include "net/incast.hh"
#include "net/ordering.hh"

namespace {

void
printTables()
{
    dsv3::bench::printTable(dsv3::core::reproduceOrdering());
    dsv3::bench::printTable(dsv3::core::reproduceIncast());
}

void
BM_EvaluateOrdering(benchmark::State &state)
{
    dsv3::net::OrderingParams p;
    p.concurrentStreams = 8;
    for (auto _ : state) {
        for (auto m : {dsv3::net::OrderingMechanism::SENDER_FENCE,
                       dsv3::net::OrderingMechanism::RECEIVER_BUFFER,
                       dsv3::net::OrderingMechanism::RAR_HARDWARE})
            benchmark::DoNotOptimize(evaluateOrdering(m, p));
    }
}
BENCHMARK(BM_EvaluateOrdering);

void
BM_EvaluateIncast(benchmark::State &state)
{
    dsv3::net::IncastScenario s;
    for (auto _ : state) {
        for (auto d : {dsv3::net::QueueDiscipline::SHARED_QUEUE,
                       dsv3::net::QueueDiscipline::VOQ,
                       dsv3::net::QueueDiscipline::VOQ_WITH_CC})
            benchmark::DoNotOptimize(evaluateIncast(d, s));
    }
}
BENCHMARK(BM_EvaluateIncast);

} // namespace

DSV3_BENCH_MAIN(printTables)
