/**
 * @file
 * Reproduces paper Table 4 (DeepSeek-V3 training step on MPFT vs
 * MRFT) and times the full training-step simulation.
 */

#include "bench_util.hh"

#include "core/report.hh"
#include "model/config.hh"
#include "model/hardware.hh"
#include "pipeline/training.hh"

namespace {

void
printTables()
{
    dsv3::bench::printTable(dsv3::core::reproduceTable4());
}

void
BM_SimulateTrainingStep(benchmark::State &state)
{
    dsv3::pipeline::TrainingSetup setup;
    setup.modelConfig = dsv3::model::deepSeekV3();
    setup.node = dsv3::model::h800Node();
    setup.fabric = state.range(0) == 0 ? dsv3::net::Fabric::MPFT
                                       : dsv3::net::Fabric::MRFT;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            dsv3::pipeline::simulateTraining(setup));
}
BENCHMARK(BM_SimulateTrainingStep)->Arg(0)->Arg(1);

void
BM_ComputeSchedule(benchmark::State &state)
{
    dsv3::pipeline::ScheduleParams p;
    p.stages = 16;
    p.microbatches = 73;
    p.chunk = {0.0753, 0.1327, 0.032, 0.003};
    for (auto _ : state)
        benchmark::DoNotOptimize(dsv3::pipeline::computeSchedule(p));
}
BENCHMARK(BM_ComputeSchedule);

} // namespace

DSV3_BENCH_MAIN(printTables)
