/**
 * @file
 * Reproduces the Sec 2.3.2 EP speed-limit analysis and the Sec 2.3.1
 * dual micro-batch overlap table.
 */

#include "bench_util.hh"

#include "core/report.hh"
#include "core/report_extensions.hh"
#include "ep/speed_limit.hh"
#include "inference/overlap.hh"

namespace {

void
printTables()
{
    dsv3::bench::printTable(dsv3::core::reproduceSpeedLimit());
    dsv3::bench::printTable(dsv3::core::reproduceOverlap());
    dsv3::bench::printTable(dsv3::core::reproduceDisaggregation());
}

void
BM_SpeedLimit(benchmark::State &state)
{
    dsv3::ep::SpeedLimitParams p;
    for (auto _ : state)
        benchmark::DoNotOptimize(dsv3::ep::epSpeedLimit(p));
}
BENCHMARK(BM_SpeedLimit);

void
BM_Overlap(benchmark::State &state)
{
    dsv3::inference::LayerStageTimes st{60e-6, 121e-6, 60e-6, 121e-6};
    for (auto _ : state)
        benchmark::DoNotOptimize(
            dsv3::inference::dualMicroBatchOverlap(st));
}
BENCHMARK(BM_Overlap);

} // namespace

DSV3_BENCH_MAIN(printTables)
