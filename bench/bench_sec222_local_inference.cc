/**
 * @file
 * Reproduces the Sec 2.2.2 analysis (MoE vs dense decode speed on
 * personal/local hardware) and times the roofline evaluator.
 */

#include "bench_util.hh"

#include "core/report.hh"
#include "inference/roofline.hh"
#include "model/config.hh"
#include "model/hardware.hh"

namespace {

void
printTables()
{
    dsv3::bench::printTable(dsv3::core::reproduceLocalInference());
}

void
BM_DecodeEstimate(benchmark::State &state)
{
    dsv3::inference::DecodeScenario s;
    s.modelConfig = dsv3::model::deepSeekV2();
    s.memBytesPerSec = dsv3::model::aiPcSoc().hbmBytesPerSec;
    s.weightBytesPerParam = 1.0;
    for (auto _ : state)
        benchmark::DoNotOptimize(dsv3::inference::decodeEstimate(s));
}
BENCHMARK(BM_DecodeEstimate);

void
BM_KTransformersTps(benchmark::State &state)
{
    auto cfg = dsv3::model::deepSeekV3();
    for (auto _ : state)
        benchmark::DoNotOptimize(dsv3::inference::ktransformersTps(
            cfg, 1008e9, 560e9, 1.0));
}
BENCHMARK(BM_KTransformersTps);

} // namespace

DSV3_BENCH_MAIN(printTables)
