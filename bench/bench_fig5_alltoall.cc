/**
 * @file
 * Reproduces paper Figure 5 (NCCL all-to-all busBW from 32 to 128
 * GPUs, MPFT vs MRFT) and times the collective simulation.
 */

#include "bench_util.hh"

#include "collective/patterns.hh"
#include "common/units.hh"
#include "core/report.hh"

namespace {

void
printTables()
{
    dsv3::bench::printTable(dsv3::core::reproduceFigure5());
}

void
BM_AllToAllSim(benchmark::State &state)
{
    dsv3::net::ClusterConfig cc;
    cc.fabric = dsv3::net::Fabric::MPFT;
    cc.hosts = (std::size_t)state.range(0);
    auto c = buildCluster(cc);
    std::vector<std::size_t> ranks(c.gpus.size());
    for (std::size_t i = 0; i < ranks.size(); ++i)
        ranks[i] = i;
    for (auto _ : state) {
        auto r = dsv3::collective::runAllToAll(
            c, ranks, 16.0 * dsv3::kMB * (double)ranks.size(),
            dsv3::net::RoutePolicy::ADAPTIVE);
        benchmark::DoNotOptimize(r.busBw);
    }
    state.counters["gpus"] = (double)ranks.size();
}
BENCHMARK(BM_AllToAllSim)->Arg(4)->Arg(8)->Arg(16);

} // namespace

DSV3_BENCH_MAIN(printTables)
