/**
 * @file
 * Reproduces paper Figure 5 (NCCL all-to-all busBW from 32 to 128
 * GPUs, MPFT vs MRFT) and times the collective simulation.
 */

#include "bench_util.hh"

#include "collective/patterns.hh"
#include "common/units.hh"
#include "core/report.hh"
#include "net/route_cache.hh"

namespace {

void
printTables()
{
    dsv3::bench::printTable(dsv3::core::reproduceFigure5());
}

void
BM_Fig5TableSweep(benchmark::State &state)
{
    // The full 8-point table sweep with the process route cache warm
    // across iterations: what a repeated report run costs.
    for (auto _ : state)
        benchmark::DoNotOptimize(dsv3::core::reproduceFigure5());
}
BENCHMARK(BM_Fig5TableSweep)->Unit(benchmark::kMillisecond);

void
BM_Fig5TableSweepColdCache(benchmark::State &state)
{
    // Same sweep from a cold route cache each iteration (every path
    // set re-enumerated): the before/after pair with BM_Fig5TableSweep
    // is the route-cache speedup recorded in BENCH_net.json.
    for (auto _ : state) {
        dsv3::net::RouteCache::global().clear();
        benchmark::DoNotOptimize(dsv3::core::reproduceFigure5());
    }
}
BENCHMARK(BM_Fig5TableSweepColdCache)->Unit(benchmark::kMillisecond);

void
BM_AllToAllSim(benchmark::State &state)
{
    dsv3::net::ClusterConfig cc;
    cc.fabric = dsv3::net::Fabric::MPFT;
    cc.hosts = (std::size_t)state.range(0);
    auto c = buildCluster(cc);
    std::vector<std::size_t> ranks(c.gpus.size());
    for (std::size_t i = 0; i < ranks.size(); ++i)
        ranks[i] = i;
    for (auto _ : state) {
        auto r = dsv3::collective::runAllToAll(
            c, ranks, 16.0 * dsv3::kMB * (double)ranks.size(),
            dsv3::net::RoutePolicy::ADAPTIVE);
        benchmark::DoNotOptimize(r.busBw);
    }
    state.counters["gpus"] = (double)ranks.size();
}
// 32 hosts = 256 GPUs: the largest point, sized to show the
// incremental FlowSimEngine's scaling headroom over a full rebuild.
BENCHMARK(BM_AllToAllSim)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void
BM_FlowSolver(benchmark::State &state)
{
    // Isolates the max-min solver epoch loop (paths pre-assigned) from
    // path enumeration, the other big cost in BM_AllToAllSim.
    dsv3::net::ClusterConfig cc;
    cc.fabric = dsv3::net::Fabric::MPFT;
    cc.hosts = (std::size_t)state.range(0);
    auto c = buildCluster(cc);
    std::vector<std::size_t> ranks(c.gpus.size());
    for (std::size_t i = 0; i < ranks.size(); ++i)
        ranks[i] = i;
    auto flows = dsv3::collective::allToAllFlows(
        c, ranks, 16.0 * dsv3::kMB * (double)ranks.size());
    // Stagger sizes so completions spread over many epochs.
    for (std::size_t i = 0; i < flows.size(); ++i)
        flows[i].bytes *= 1.0 + (double)(i % 7) / 7.0;
    assignPaths(c.graph, flows, dsv3::net::RoutePolicy::ADAPTIVE, 1);
    for (auto _ : state) {
        auto r = dsv3::net::simulateFlows(c.graph, flows);
        benchmark::DoNotOptimize(r.makespan);
        state.counters["epochs"] = (double)r.epochs;
        state.counters["iters"] = (double)r.solverIterations;
    }
    state.counters["flows"] = (double)flows.size();
}
// Staggered sizes give ~one completion epoch per flow, so cost grows
// with flows x epochs for any epoch-based solver; keep the sweep to
// sizes where a single simulation stays sub-second.
BENCHMARK(BM_FlowSolver)->Arg(4)->Arg(8);

} // namespace

DSV3_BENCH_MAIN(printTables)
