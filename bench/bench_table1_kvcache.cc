/**
 * @file
 * Reproduces paper Table 1 (KV cache per token, MLA vs GQA) and times
 * the KV-cache calculator.
 */

#include "bench_util.hh"

#include "core/report.hh"
#include "model/config.hh"
#include "model/kv_cache.hh"

namespace {

void
printTables()
{
    dsv3::bench::printTable(dsv3::core::reproduceTable1());
}

void
BM_KvCacheBytesPerToken(benchmark::State &state)
{
    auto cfg = dsv3::model::deepSeekV3();
    for (auto _ : state)
        benchmark::DoNotOptimize(
            dsv3::model::kvCacheBytesPerToken(cfg));
}
BENCHMARK(BM_KvCacheBytesPerToken);

void
BM_MaxContextTokens(benchmark::State &state)
{
    auto cfg = dsv3::model::deepSeekV3();
    for (auto _ : state)
        benchmark::DoNotOptimize(
            dsv3::model::maxContextTokens(cfg, 80e9));
}
BENCHMARK(BM_MaxContextTokens);

} // namespace

DSV3_BENCH_MAIN(printTables)
