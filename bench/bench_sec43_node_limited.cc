/**
 * @file
 * Reproduces the Sec 4.3 node-limited routing analysis (group-limit
 * sweep -> E[M] and IB time) and times the gate.
 */

#include "bench_util.hh"

#include "core/report.hh"
#include "moe/gate.hh"
#include "moe/token_gen.hh"

namespace {

void
printTables()
{
    dsv3::bench::printTable(dsv3::core::reproduceNodeLimited());
}

void
BM_GateRoute(benchmark::State &state)
{
    dsv3::moe::GateConfig cfg;
    cfg.experts = 256;
    cfg.topK = 8;
    cfg.groups = 8;
    cfg.topKGroups = (std::size_t)state.range(0);
    dsv3::moe::TopKGate gate(cfg);
    dsv3::moe::TokenScoreGenerator gen(256, 0.3, 3);
    auto logits = gen.next();
    for (auto _ : state)
        benchmark::DoNotOptimize(gate.route(logits));
}
BENCHMARK(BM_GateRoute)->Arg(8)->Arg(4)->Arg(1);

void
BM_TokenGeneration(benchmark::State &state)
{
    dsv3::moe::TokenScoreGenerator gen(256, 0.3, 3);
    for (auto _ : state)
        benchmark::DoNotOptimize(gen.next());
}
BENCHMARK(BM_TokenGeneration);

} // namespace

DSV3_BENCH_MAIN(printTables)
