/**
 * @file
 * Reproduces the Sec 4.4 scale-up/scale-out convergence analysis
 * (SM forwarding vs RDMA-only vs hardware offload) together with the
 * EPLB load-balancing ablation that determines the per-GPU load those
 * transports carry.
 */

#include "bench_util.hh"

#include <vector>

#include "common/rng.hh"
#include "core/report_extensions.hh"
#include "ep/offload.hh"
#include "moe/eplb.hh"

namespace {

void
printTables()
{
    dsv3::bench::printTable(dsv3::core::reproduceOffload());
    dsv3::bench::printTable(dsv3::core::reproduceEplb());
    dsv3::bench::printTable(dsv3::core::reproduceBiasBalancing());
}

void
BM_EvaluateTransport(benchmark::State &state)
{
    dsv3::ep::TransportParams p;
    p.computeTime = 110e-6;
    p.ibTimePerNodeCopy = 33e-6;
    for (auto _ : state) {
        for (auto tr : {dsv3::ep::CommTransport::SM_FORWARDING,
                        dsv3::ep::CommTransport::RDMA_ONLY,
                        dsv3::ep::CommTransport::HARDWARE_OFFLOAD})
            benchmark::DoNotOptimize(evaluateTransport(tr, p));
    }
}
BENCHMARK(BM_EvaluateTransport);

void
BM_EplbBalance(benchmark::State &state)
{
    dsv3::Rng rng(1);
    std::vector<double> load(256);
    for (auto &l : load)
        l = rng.exponential(1.0) + 0.05;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            dsv3::moe::balanceExperts(load, 64, 5));
}
BENCHMARK(BM_EplbBalance);

} // namespace

DSV3_BENCH_MAIN(printTables)
