/**
 * @file
 * Chaos serving (Sec 6 robustness applied to inference): Monte-Carlo
 * availability of a decode fleet under Poisson engine failures vs the
 * analytic MTBF/(MTBF+MTTR) bound, degraded-mode SLOs as the fault
 * rate rises, the three-way split of non-completion outcomes
 * (reject vs preempt vs shed vs failed), and time-in-state
 * attribution of a faulted run including the chaos-only FAILOVER and
 * RETRY_BACKOFF states.
 *
 * Fault schedules and retry jitter are seed-deterministic, so every
 * cell is byte-identical across reruns and thread widths and the
 * whole report diffs cleanly against BENCH_serving_chaos.json.
 */

#include "bench_util.hh"
#include "sweep_driver.hh"

#include <algorithm>
#include <cmath>

#include "common/units.hh"
#include "fault/schedule.hh"
#include "inference/serving/chaos.hh"
#include "inference/serving/simulator.hh"
#include "inference/serving/traffic.hh"
#include "model/config.hh"
#include "model/kv_cache.hh"
#include "obs/timeline.hh"

namespace {

using namespace dsv3;
using namespace dsv3::inference::serving;

/** Comm-bound fleet (decode floor = Sec 2.3.2 all-to-all): chaos
 *  effects stand out against a deterministic healthy baseline. */
ServingFleetConfig
chaosFleet(std::size_t engines)
{
    ServingFleetConfig fleet;
    fleet.modelConfig = model::deepSeekV3();
    fleet.memBytesPerSec = 1e30;
    fleet.computeFlopsPerSec = 0.0;
    fleet.maxBatchPerEngine = 64;
    fleet.decodeEngines = engines;
    fleet.prefillServers = 64;
    fleet.prefillTokensPerSecPerServer = 1e9;
    fleet.kvHandoffSeconds = 0.0;
    fleet.sloTtftSeconds = 2.0;
    fleet.sloTpotSeconds = 0.05;
    return fleet;
}

TrafficConfig
poissonTraffic(std::size_t requests, double rate, std::size_t gen)
{
    TrafficConfig traffic;
    traffic.process = ArrivalProcess::POISSON;
    traffic.requests = requests;
    traffic.requestsPerSecond = rate;
    traffic.promptTokensMin = traffic.promptTokensMax = 128;
    traffic.genTokensMin = traffic.genTokensMax = gen;
    return traffic;
}

fault::FaultSchedule
generatedSchedule(std::size_t engines, double fail_per_hour,
                  double repair_sec, double degrade_per_hour,
                  double horizon_sec, std::uint64_t seed)
{
    fault::FaultRates rates;
    rates.rankFailPerHour = fail_per_hour;
    rates.rankRepairSec = repair_sec;
    rates.linkDegradePerHour = degrade_per_hour;
    rates.degradeFactor = 0.6;
    rates.linkRepairSec = repair_sec;
    return fault::FaultSchedule::generate(servingFaultDomain(engines),
                                          rates, horizon_sec, seed);
}

/**
 * Fleet availability under Poisson engine crashes, Monte-Carlo over
 * schedule seeds, against the analytic per-engine steady-state bound
 * A = MTBF/(MTBF+MTTR). Rows outside the valid regime (too few
 * expected failures or a span dominated by the all-up transient) are
 * marked and exempt from the CI 5% gate.
 */
Table
availabilityVsFaultRate()
{
    constexpr std::size_t kEngines = 4, kSeeds = 12;
    constexpr double kRepairSec = 20.0;
    const double mtbf_sec[] = {60.0, 120.0, 240.0, 480.0};

    Table t("Fleet availability vs engine fault rate (4 engines, "
            "MTTR 20 s, 12-seed Monte-Carlo vs MTBF/(MTBF+MTTR))");
    t.setHeader({"Engine MTBF", "Fails/engine-hr", "Analytic avail",
                 "Simulated avail", "Rel err", "Valid regime",
                 "Deaths/run"});

    bench::SweepDriver<ServingMetrics> grid(4, kSeeds);
    grid.run([&](std::size_t row, std::size_t col) {
        const double fail_per_hour = 3600.0 / mtbf_sec[row];
        ServingFleetConfig fleet = chaosFleet(kEngines);
        fleet.chaos.schedule = generatedSchedule(
            kEngines, fail_per_hour, kRepairSec, 0.0, 3600.0,
            101 * (row + 1) + col);
        return simulateServing(fleet, poissonTraffic(800, 1.0, 32),
                               101 * (row + 1) + col);
    });

    for (std::size_t row = 0; row < 4; ++row) {
        const double fail_per_hour = 3600.0 / mtbf_sec[row];
        double sum = 0.0, deaths = 0.0, span = 1e300;
        for (std::size_t col = 0; col < kSeeds; ++col) {
            const ServingMetrics &m = grid.at(row, col);
            sum += m.availability;
            deaths += (double)m.engineDeaths;
            span = std::min(span, m.simSeconds);
        }
        const double measured = sum / (double)kSeeds;
        const double analytic =
            analyticEngineAvailability(fail_per_hour, kRepairSec);
        const bool in_regime = availabilityValidRegime(
            kEngines, span, fail_per_hour, kRepairSec);
        t.addRow({formatTime(mtbf_sec[row]),
                  Table::fmt(fail_per_hour, 1),
                  Table::fmtPercent(analytic, 2),
                  Table::fmtPercent(measured, 2),
                  Table::fmtPercent(
                      std::abs(measured - analytic) / analytic, 2),
                  in_regime ? "yes" : "transient",
                  Table::fmt(deaths / (double)kSeeds, 1)});
    }
    return t;
}

/** SLOs as the fleet degrades: crashes plus degraded NIC uplinks. */
Table
degradedModeSlo()
{
    constexpr std::size_t kEngines = 4;
    const double mtbf_sec[] = {0.0, 240.0, 120.0, 60.0};

    Table t("Degraded-mode SLOs vs fault rate (4 engines, MTTR 20 s, "
            "crashes + NIC degrades, Poisson 16 req/s x 2K tokens)");
    t.setHeader({"Engine MTBF", "Avail", "Tok/s", "SLO tok/s",
                 "TTFT p99", "TPOT p99", "Completed", "Failed",
                 "Retries", "Failovers"});

    bench::SweepDriver<ServingMetrics> grid(4, 1);
    grid.run([&](std::size_t row, std::size_t) {
        ServingFleetConfig fleet = chaosFleet(kEngines);
        if (mtbf_sec[row] > 0.0) {
            const double per_hour = 3600.0 / mtbf_sec[row];
            fleet.chaos.schedule = generatedSchedule(
                kEngines, per_hour, 20.0, per_hour, 3600.0, 7);
        }
        return simulateServing(fleet,
                               poissonTraffic(1600, 16.0, 2048), 19);
    });

    for (std::size_t row = 0; row < 4; ++row) {
        const ServingMetrics &m = grid.at(row, 0);
        t.addRow({mtbf_sec[row] > 0.0 ? formatTime(mtbf_sec[row])
                                      : std::string("no faults"),
                  Table::fmtPercent(m.availability, 2),
                  Table::fmt(m.tokensPerSecond, 1),
                  Table::fmt(m.sloGoodputTokensPerSecond, 1),
                  formatTime(m.ttft.p99), formatTime(m.tpot.p99),
                  Table::fmtInt(m.requestsCompleted),
                  Table::fmtInt(m.requestsFailed),
                  Table::fmtInt(m.retries),
                  Table::fmtInt(m.failovers)});
    }
    return t;
}

/**
 * The three-way split of non-completion outcomes: fitsEver rejection
 * (the context can never hold the KV), OOM preemption (it ran, lost
 * its blocks, and recomputed), admission-control shedding, and
 * retry-budget exhaustion are deliberately distinct counters.
 */
Table
outcomeSeparation()
{
    Table t("Terminal-outcome separation: reject vs preempt vs shed "
            "vs failed");
    t.setHeader({"Scenario", "Completed", "Rejected", "Preempted",
                 "Shed", "Failed", "Stranded"});

    const char *names[] = {"healthy closed loop", "KV pressure",
                           "overload + shed cap",
                           "flapping engine (budget 1)"};
    bench::SweepDriver<ServingMetrics> grid(4, 1);
    grid.run([&](std::size_t row, std::size_t) {
        const double per_tok = model::kvCacheBytesPerToken(
            model::deepSeekV3());
        TrafficConfig closed;
        closed.process = ArrivalProcess::CLOSED_LOOP;
        closed.requests = 64;
        closed.closedLoopConcurrency = 16;
        closed.promptTokensMin = closed.promptTokensMax = 128;
        closed.genTokensMin = closed.genTokensMax = 256;
        switch (row) {
          case 0:
            return simulateServing(chaosFleet(1), closed, 7);
          case 1: {
            ServingFleetConfig kv = chaosFleet(1);
            kv.kvBudgetBytesPerEngine = per_tok * 6.0 * 384.0;
            kv.kvBlockTokens = 32;
            kv.maxBatchPerEngine = 16;
            return simulateServing(kv, closed, 7);
          }
          case 2: {
            ServingFleetConfig cap = chaosFleet(1);
            cap.chaos.shedMaxOutstanding = 8;
            return simulateServing(
                cap, poissonTraffic(200, 500.0, 64), 41);
          }
          default: {
            ServingFleetConfig flap = chaosFleet(1);
            std::vector<fault::FaultEvent> events;
            for (int cycle = 0; cycle < 3; ++cycle) {
                fault::FaultEvent down;
                down.time = 2.0 + 3.0 * cycle;
                down.kind = fault::FaultKind::RANK_DOWN;
                down.rank = 0;
                fault::FaultEvent up = down;
                up.time = down.time + 1.0;
                up.kind = fault::FaultKind::RANK_UP;
                events.push_back(down);
                events.push_back(up);
            }
            flap.chaos.schedule =
                fault::FaultSchedule(std::move(events));
            flap.chaos.retryBudget = 1;
            flap.chaos.backoffBaseSeconds = 0.1;
            flap.chaos.backoffMaxSeconds = 0.5;
            TrafficConfig longgen = closed;
            longgen.genTokensMin = longgen.genTokensMax = 1024;
            return simulateServing(flap, longgen, 31);
          }
        }
    });
    for (std::size_t row = 0; row < 4; ++row) {
        const ServingMetrics &m = grid.at(row, 0);
        t.addRow({names[row], Table::fmtInt(m.requestsCompleted),
                  Table::fmtInt(m.requestsRejected),
                  Table::fmtInt(m.preemptions),
                  Table::fmtInt(m.requestsShed),
                  Table::fmtInt(m.requestsFailed),
                  Table::fmtInt(m.requestsStranded)});
    }
    return t;
}

/**
 * Serial observability run under chaos: one engine dies and recovers,
 * the other's uplink degrades. The flight recorder (with its
 * chaos-only live-engine channel) lands in the --json report's
 * timeseries; --timeline=<path> writes the sim-time Chrome trace with
 * the failover/retry markers. All eight request states print,
 * including the chaos-only FAILOVER and RETRY_BACKOFF.
 */
Table
chaosAttribution()
{
    ServingFleetConfig fleet = chaosFleet(2);
    std::vector<fault::FaultEvent> events;
    fault::FaultEvent down;
    down.time = 2.0;
    down.kind = fault::FaultKind::RANK_DOWN;
    down.rank = 0;
    fault::FaultEvent up = down;
    up.time = 6.0;
    up.kind = fault::FaultKind::RANK_UP;
    fault::FaultEvent degrade;
    degrade.time = 3.0;
    degrade.kind = fault::FaultKind::LINK_DEGRADED;
    degrade.nodeA = 1;
    degrade.nodeB = 3;
    degrade.factor = 0.7;
    events.push_back(down);
    events.push_back(up);
    events.push_back(degrade);
    fleet.chaos.schedule = fault::FaultSchedule(std::move(events));

    TrafficConfig traffic;
    traffic.process = ArrivalProcess::CLOSED_LOOP;
    traffic.requests = 96;
    traffic.closedLoopConcurrency = 32;
    traffic.promptTokensMin = traffic.promptTokensMax = 128;
    traffic.genTokensMin = traffic.genTokensMax = 512;

    obs::Timeline timeline(obs::Timeline::configFromEnv());
    fleet.recorder = &bench::flightRecorder();
    fleet.recorderIntervalSeconds = 0.1;
    if (!bench::timelinePath().empty())
        fleet.timeline = &timeline;

    ServingMetrics m = simulateServing(fleet, traffic, 53);

    if (!bench::timelinePath().empty()) {
        timeline.writeChromeJson(bench::timelinePath());
        std::fprintf(stderr,
                     "wrote chaos sim timeline: %s (%zu events)\n",
                     bench::timelinePath().c_str(),
                     timeline.eventCount());
    }

    Table t("Time-in-state attribution under chaos (engine death + "
            "recovery + degraded uplink)");
    t.setHeader({"State", "Total", "Share", "p50/req", "p95/req",
                 "p99/req"});
    for (std::size_t s = 0; s < kNumRequestStates; ++s) {
        const PercentileSummary &ps = m.statePerRequest[s];
        const double share = m.totalLatencySeconds > 0.0
            ? m.stateSeconds[s] / m.totalLatencySeconds : 0.0;
        t.addRow({requestStateName((RequestState)s),
                  formatTime(m.stateSeconds[s]),
                  Table::fmtPercent(share, 1), formatTime(ps.p50),
                  formatTime(ps.p95), formatTime(ps.p99)});
    }
    t.addRow({"total latency", formatTime(m.totalLatencySeconds),
              "100%", "", "", ""});
    t.addRow({"availability", Table::fmtPercent(m.availability, 2),
              "", "min live", Table::fmtInt(m.minLiveEngines), ""});
    t.addRow({"verdict", bottleneckName(m.bottleneck), "", "", "",
              ""});
    return t;
}

void
printTables()
{
    bench::printTable(availabilityVsFaultRate());
    bench::printTable(degradedModeSlo());
    bench::printTable(outcomeSeparation());
    bench::printTable(chaosAttribution());
}

// Microbenchmarks -------------------------------------------------------

void
BM_SimulateChaosClosedLoop(benchmark::State &state)
{
    ServingFleetConfig fleet = chaosFleet(4);
    fleet.chaos.schedule =
        generatedSchedule(4, 30.0, 20.0, 30.0, 600.0, 5);
    TrafficConfig traffic;
    traffic.process = ArrivalProcess::CLOSED_LOOP;
    traffic.requests = (std::size_t)state.range(0);
    traffic.closedLoopConcurrency = 64;
    traffic.genTokensMin = traffic.genTokensMax = 128;
    for (auto _ : state)
        benchmark::DoNotOptimize(simulateServing(fleet, traffic, 1));
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
// The 1024-request arg exists to show the event-loop scaling the
// calendar + per-engine-slot core buys; it runs only when the
// microbenchmarks do (CI's table runs filter them out).
BENCHMARK(BM_SimulateChaosClosedLoop)->Arg(64)->Arg(256)->Arg(1024);

void
BM_GenerateFaultSchedule(benchmark::State &state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            generatedSchedule((std::size_t)state.range(0), 30.0, 20.0,
                              30.0, 3600.0, 11));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GenerateFaultSchedule)->Arg(4)->Arg(64);

} // namespace

DSV3_BENCH_MAIN(printTables)
