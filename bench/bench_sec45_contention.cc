/**
 * @file
 * Reproduces the Sec 4.5 bandwidth-contention analysis (EP traffic vs
 * KV-cache transfers on PCIe under different arbitration schemes).
 */

#include "bench_util.hh"

#include "core/report_extensions.hh"
#include "net/contention.hh"

namespace {

void
printTables()
{
    dsv3::bench::printTable(dsv3::core::reproduceContention());
}

void
BM_EvaluateContention(benchmark::State &state)
{
    dsv3::net::ContentionScenario s;
    s.epBytes = 40e6;
    s.kvBytes = 320e6;
    for (auto _ : state) {
        for (auto a : {dsv3::net::PcieArbitration::FAIR_SHARE,
                       dsv3::net::PcieArbitration::EP_PRIORITY,
                       dsv3::net::PcieArbitration::IO_DIE})
            benchmark::DoNotOptimize(evaluateContention(a, s));
    }
}
BENCHMARK(BM_EvaluateContention);

} // namespace

DSV3_BENCH_MAIN(printTables)
