/**
 * @file
 * Reproduces paper Table 3 (topology sizing and cost) and times the
 * graph builders (Slim Fly construction is the heavy one).
 */

#include "bench_util.hh"

#include "core/report.hh"
#include "net/cost.hh"
#include "net/dragonfly.hh"
#include "net/slimfly.hh"

namespace {

void
printTables()
{
    dsv3::bench::printTable(dsv3::core::reproduceTable3());
}

void
BM_Table3Sweep(benchmark::State &state)
{
    // The whole reproduction (1 x 5 topology grid through the sweep
    // driver) including table formatting.
    for (auto _ : state)
        benchmark::DoNotOptimize(dsv3::core::reproduceTable3());
}
BENCHMARK(BM_Table3Sweep);

void
BM_CountTopologies(benchmark::State &state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(dsv3::net::countFatTree2(64, 2048));
        benchmark::DoNotOptimize(
            *dsv3::net::countMultiPlaneFatTree(64, 8, 16384));
        benchmark::DoNotOptimize(dsv3::net::countFatTree3(64, 65536));
        benchmark::DoNotOptimize(dsv3::net::countSlimFly(28));
        benchmark::DoNotOptimize(
            dsv3::net::countDragonfly(16, 32, 16, 511));
    }
}
BENCHMARK(BM_CountTopologies);

void
BM_BuildSlimFlyQ13(benchmark::State &state)
{
    for (auto _ : state) {
        auto g = dsv3::net::buildSlimFly(13, 2);
        benchmark::DoNotOptimize(g.edgeCount());
    }
}
BENCHMARK(BM_BuildSlimFlyQ13);

void
BM_BuildDragonfly(benchmark::State &state)
{
    dsv3::net::DragonflyParams p;
    p.p = 2;
    p.a = 8;
    p.h = 4; // 33 groups, 264 switches
    for (auto _ : state) {
        auto g = dsv3::net::buildDragonfly(p);
        benchmark::DoNotOptimize(g.edgeCount());
    }
}
BENCHMARK(BM_BuildDragonfly);

void
BM_SlimFlyDiameter(benchmark::State &state)
{
    auto g = dsv3::net::buildSlimFly(5, 0);
    auto switches = g.nodesOfKind(dsv3::net::NodeKind::LEAF);
    for (auto _ : state)
        benchmark::DoNotOptimize(dsv3::net::graphDiameter(g, switches));
}
BENCHMARK(BM_SlimFlyDiameter);

} // namespace

DSV3_BENCH_MAIN(printTables)
