/**
 * @file
 * Shared scaffolding for the bench binaries.
 *
 * Every bench binary reproduces one of the paper's tables/figures:
 * its main() first prints the reproduction table(s) (the deliverable),
 * then runs the registered google-benchmark microbenchmarks that time
 * the underlying kernels.
 */

#pragma once

#include <cstdio>
#include <functional>

#include <benchmark/benchmark.h>

#include "common/table.hh"

namespace dsv3::bench {

/** Print a reproduction table to stdout. */
inline void
printTable(const Table &table)
{
    std::fputs(table.render().c_str(), stdout);
    std::fputs("\n", stdout);
}

/**
 * Standard bench main body: print the reproduction tables, then run
 * the microbenchmarks.
 */
inline int
runBench(int argc, char **argv,
         const std::function<void()> &print_tables)
{
    print_tables();
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

} // namespace dsv3::bench

#define DSV3_BENCH_MAIN(print_tables)                                  \
    int main(int argc, char **argv)                                    \
    {                                                                  \
        return ::dsv3::bench::runBench(argc, argv, (print_tables));    \
    }
