/**
 * @file
 * Shared scaffolding for the bench binaries.
 *
 * Every bench binary reproduces one of the paper's tables/figures:
 * its main() first prints the reproduction table(s) (the deliverable),
 * then runs the registered google-benchmark microbenchmarks that time
 * the underlying kernels.
 *
 * Observability flags (parsed before google-benchmark sees argv):
 *
 *   --json=<path>   write a dsv3-bench-report/v1 JSON document with
 *                   the printed tables plus the stats-registry
 *                   snapshot (see obs/report.hh)
 *   --trace=<path>  enable trace collection and write the run's spans
 *                   as Chrome trace-event JSON (see obs/trace.hh)
 *   --timeline=<path>  ask the bench to emit its sim-time timeline
 *                   (obs/timeline.hh) to <path>. Unlike --trace the
 *                   timestamps are simulated time, so the file is
 *                   byte-identical across reruns and thread widths.
 *                   Only benches that drive a simulator honor it
 *                   (currently bench_serving); others ignore it.
 *   --threads=<N>   cap the sweep width: parallelFor()/runSweepGrid()
 *                   use at most N threads, caller included (1 =
 *                   serial, 0 = uncapped default). Table output is
 *                   byte-identical at every width; the flag only
 *                   changes wall-clock.
 *   --repeat=<N>    after the normal (printing) table pass, rebuild
 *                   the tables N more times with output suppressed
 *                   and log the min wall seconds per pass to stderr.
 *                   This is the wall-time trend harness the
 *                   BENCH_*.json speedup_vs_seed sections and the CI
 *                   non-gating perf log use: min-of-N of the full
 *                   table build (simulations included), stdout
 *                   untouched. Don't combine with --json: the obs
 *                   stats counters accumulate across passes, so a
 *                   report written after a --repeat run is not
 *                   comparable to a single-pass baseline.
 *
 * All default off; without them a bench run is byte-identical to the
 * pre-observability output.
 */

#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "common/table.hh"
#include "common/thread_pool.hh"
#include "numerics/dispatch.hh"
#include "obs/flight_recorder.hh"
#include "obs/registry.hh"
#include "obs/report.hh"
#include "obs/trace.hh"

namespace dsv3::bench {

/** Tables printed so far this run, in print order (for --json). */
inline std::vector<Table> &
printedTables()
{
    static std::vector<Table> tables;
    return tables;
}

/** --timeline=<path> from the command line ("" when absent). */
inline std::string &
timelinePath()
{
    static std::string path;
    return path;
}

/**
 * Fleet-gauge flight recorder for this bench run. A bench that drives
 * a simulator points one (serial) run at this recorder; whatever
 * lands here is embedded as the report's "timeseries" section.
 */
inline obs::FlightRecorder &
flightRecorder()
{
    static obs::FlightRecorder recorder;
    return recorder;
}

/** True while a --repeat timing pass is rebuilding tables: printing
 *  and --json recording are suppressed so the extra passes leave
 *  stdout and the report exactly as a single pass would. */
inline bool &
tablesQuiet()
{
    static bool quiet = false;
    return quiet;
}

/** Print a reproduction table to stdout (and record it for --json). */
inline void
printTable(const Table &table)
{
    if (tablesQuiet())
        return;
    std::fputs(table.render().c_str(), stdout);
    std::fputs("\n", stdout);
    printedTables().push_back(table);
}

namespace detail {

/**
 * Pop `--<flag>=<path>` out of argv (so google-benchmark never sees
 * it); returns the path or "" when absent.
 */
inline std::string
extractPathFlag(int &argc, char **argv, const char *flag)
{
    std::string prefix = std::string("--") + flag + "=";
    std::string path;
    int w = 1;
    for (int r = 1; r < argc; ++r) {
        if (std::strncmp(argv[r], prefix.c_str(), prefix.size()) == 0)
            path = argv[r] + prefix.size();
        else
            argv[w++] = argv[r];
    }
    argc = w;
    return path;
}

inline std::string
benchName(const char *argv0)
{
    std::string name = argv0 ? argv0 : "bench";
    std::size_t slash = name.find_last_of('/');
    if (slash != std::string::npos)
        name = name.substr(slash + 1);
    return name;
}

/**
 * Console reporter that additionally records every per-iteration run
 * as an obs::BenchTiming, so --json reports can embed the timings
 * (the BENCH_*.json perf baselines compare against these).
 */
class RecordingReporter : public benchmark::ConsoleReporter
{
  public:
    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        for (const Run &run : runs) {
            if (run.run_type != Run::RT_Iteration || run.error_occurred)
                continue;
            obs::BenchTiming t;
            t.name = run.benchmark_name();
            t.iterations = (std::uint64_t)run.iterations;
            double iters =
                run.iterations > 0 ? (double)run.iterations : 1.0;
            t.realSecondsPerIter = run.real_accumulated_time / iters;
            t.cpuSecondsPerIter = run.cpu_accumulated_time / iters;
            auto it = run.counters.find("items_per_second");
            if (it != run.counters.end())
                t.itemsPerSecond = it->second.value;
            timings.push_back(std::move(t));
        }
        ConsoleReporter::ReportRuns(runs);
    }

    std::vector<obs::BenchTiming> timings;
};

} // namespace detail

/**
 * Standard bench main body: print the reproduction tables, then run
 * the microbenchmarks, then write any requested --json/--trace files.
 */
inline int
runBench(int argc, char **argv,
         const std::function<void()> &print_tables)
{
    const std::string json_path =
        detail::extractPathFlag(argc, argv, "json");
    const std::string trace_path =
        detail::extractPathFlag(argc, argv, "trace");
    timelinePath() = detail::extractPathFlag(argc, argv, "timeline");
    const std::string threads_arg =
        detail::extractPathFlag(argc, argv, "threads");
    const std::string repeat_arg =
        detail::extractPathFlag(argc, argv, "repeat");
    if (!trace_path.empty())
        obs::setTraceEnabled(true);
    if (!threads_arg.empty())
        setParallelForWidth(
            (std::size_t)std::strtoul(threads_arg.c_str(), nullptr,
                                      10));

    print_tables();

    // --repeat=N: min-of-N wall time of the full table build. The
    // timing passes run quiet (no stdout, no --json recording) and
    // clear the flight recorder first, so — simulations being
    // seed-deterministic — the recorder ends holding exactly one
    // pass's samples, the same as a plain run.
    if (!repeat_arg.empty()) {
        const std::size_t repeat = (std::size_t)std::strtoul(
            repeat_arg.c_str(), nullptr, 10);
        using clock = std::chrono::steady_clock;
        double best = 0.0;
        tablesQuiet() = true;
        for (std::size_t i = 0; i < repeat; ++i) {
            flightRecorder().clear();
            const clock::time_point t0 = clock::now();
            print_tables();
            const double wall =
                std::chrono::duration<double>(clock::now() - t0)
                    .count();
            if (i == 0 || wall < best)
                best = wall;
        }
        tablesQuiet() = false;
        if (repeat > 0) {
            std::fprintf(stderr,
                         "%s tables: min-of-%zu wall %.6f s/pass\n",
                         detail::benchName(argv[0]).c_str(), repeat,
                         best);
        }
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    detail::RecordingReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();

    if (!json_path.empty()) {
        // Stamp the resolved SIMD dispatch choice so archived reports
        // say which kernel tables produced these timings, and whether
        // DSV3_KERNEL_DISPATCH pinned them.
        const numerics::KernelIsa isa = numerics::activeIsa();
        obs::setReportField(
            "dispatch",
            std::string("{\"isa\":\"") + numerics::isaName(isa) +
                "\",\"forced\":" +
                (numerics::dispatchForced() ? "true" : "false") + "}");
        obs::writeBenchReport(json_path, detail::benchName(argv[0]),
                              printedTables(),
                              obs::Registry::global(),
                              reporter.timings, &flightRecorder());
        std::fprintf(stderr, "wrote bench report: %s\n",
                     json_path.c_str());
    }
    if (!trace_path.empty()) {
        obs::writeChromeTrace(trace_path);
        std::fprintf(stderr, "wrote chrome trace: %s (%zu events)\n",
                     trace_path.c_str(), obs::traceEventCount());
    }
    return 0;
}

} // namespace dsv3::bench

#define DSV3_BENCH_MAIN(print_tables)                                  \
    int main(int argc, char **argv)                                    \
    {                                                                  \
        return ::dsv3::bench::runBench(argc, argv, (print_tables));    \
    }
