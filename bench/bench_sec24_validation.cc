/**
 * @file
 * Reproduces the Sec 2.4 technique-validation methodology: FP8
 * precision recipes evaluated end-to-end on a small MoE transformer
 * before any large-scale commitment.
 */

#include "bench_util.hh"

#include "common/rng.hh"
#include "core/report_extensions.hh"
#include "model/tiny_transformer.hh"

namespace {

void
printTables()
{
    dsv3::bench::printTable(
        dsv3::core::reproducePrecisionValidation());
}

void
BM_TinyTransformerForward(benchmark::State &state)
{
    dsv3::model::TinyTransformerConfig cfg;
    dsv3::model::TinyTransformer model(cfg, 1);
    dsv3::Rng rng(2);
    dsv3::model::Matrix x(16, cfg.hidden);
    x.fillNormal(rng);
    auto precision = (dsv3::model::Precision)state.range(0);
    for (auto _ : state)
        benchmark::DoNotOptimize(model.forward(x, precision));
}
BENCHMARK(BM_TinyTransformerForward)
    ->Arg((int)dsv3::model::Precision::FP64)
    ->Arg((int)dsv3::model::Precision::BF16)
    ->Arg((int)dsv3::model::Precision::FP8_FINE);

} // namespace

DSV3_BENCH_MAIN(printTables)
