/**
 * @file
 * Reproduces the Sec 6.1 robustness analysis: analytic goodput vs
 * cluster size, Monte-Carlo validation of the Young/Daly model via
 * the discrete-event fault trainer, and a fault-injection sweep that
 * quantifies the Multi-Plane Fat-Tree's fault isolation against the
 * single-plane multi-rail baseline (all-to-all bandwidth retained
 * under link / switch / plane outages with failover routing).
 */

#include "bench_util.hh"
#include "sweep_driver.hh"

#include <vector>

#include "common/rng.hh"
#include "core/report_extensions.hh"
#include "fault/failover.hh"
#include "fault/injector.hh"
#include "fault/schedule.hh"
#include "net/cost.hh"
#include "net/flow.hh"
#include "net/route_cache.hh"
#include "pipeline/fault_trainer.hh"
#include "pipeline/reliability.hh"

namespace {

using namespace dsv3;

// ---- Fault-injection sweep: MPFT vs MRFT bandwidth retention ----

net::ClusterConfig
sweepConfig(net::Fabric fabric)
{
    net::ClusterConfig cfg;
    cfg.fabric = fabric;
    cfg.hosts = 8;
    cfg.gpusPerHost = 4;
    cfg.planes = 4;
    cfg.switchRadix = 8;
    return cfg;
}

net::NodeId
firstNodeOfKind(const net::Graph &g, net::NodeKind kind)
{
    for (net::NodeId n = 0; n < g.nodeCount(); ++n)
        if (g.node(n).kind == kind)
            return n;
    return net::kInvalidNode;
}

fault::FaultEvent
planeDown(std::int32_t plane)
{
    fault::FaultEvent ev;
    ev.kind = fault::FaultKind::PLANE_DOWN;
    ev.plane = plane;
    return ev;
}

/** The faults of one sweep scenario, built against a live cluster. */
std::vector<fault::FaultEvent>
scenarioEvents(const net::Cluster &cluster, std::size_t scenario)
{
    const net::Graph &g = cluster.graph;
    fault::FaultEvent ev;
    switch (scenario) {
      case 0: // healthy
        return {};
      case 1: { // one GPU's NIC cable
        ev.kind = fault::FaultKind::LINK_DOWN;
        ev.nodeA = cluster.gpus[0];
        ev.nodeB = firstNodeOfKind(g, net::NodeKind::LEAF);
        return {ev};
      }
      case 2: { // one leaf switch
        ev.kind = fault::FaultKind::SWITCH_DOWN;
        ev.nodeA = firstNodeOfKind(g, net::NodeKind::LEAF);
        return {ev};
      }
      case 3: { // one spine switch
        ev.kind = fault::FaultKind::SWITCH_DOWN;
        ev.nodeA = firstNodeOfKind(g, net::NodeKind::SPINE);
        return {ev};
      }
      case 4: // a whole plane (MRFT: that rail's leaves)
        return {planeDown(0)};
      case 5: // two planes
        return {planeDown(0), planeDown(1)};
    }
    return {};
}

const char *const kScenarioNames[] = {
    "healthy", "NIC link down", "leaf down",
    "spine down", "plane 0 down", "planes 0+1 down",
};
constexpr std::size_t kScenarios = 6;

struct SweepOutcome
{
    double healthyRate = 0.0; //!< aggregate all-to-all rate (B/s)
    double degradedRate = 0.0;
    std::size_t rerouted = 0;
    std::size_t stalled = 0;
};

std::vector<net::Flow>
allToAllFlows(const net::Cluster &cluster)
{
    std::vector<net::Flow> flows;
    std::uint64_t qp = 0;
    for (std::size_t s = 0; s < cluster.gpus.size(); ++s) {
        for (std::size_t d = 0; d < cluster.gpus.size(); ++d) {
            if (s == d)
                continue;
            net::Flow f;
            f.src = cluster.gpus[s];
            f.dst = cluster.gpus[d];
            f.bytes = 64e6;
            f.qp = qp++;
            flows.push_back(f);
        }
    }
    return flows;
}

SweepOutcome
runScenario(net::Fabric fabric, std::size_t scenario)
{
    net::Cluster cluster = net::buildCluster(sweepConfig(fabric));
    std::vector<net::Flow> flows = allToAllFlows(cluster);
    assignPaths(cluster.graph, flows, net::RoutePolicy::ADAPTIVE);
    net::FlowSimEngine engine(cluster.graph, flows);

    auto aggregate = [&]() {
        const std::vector<double> &rates = engine.solve();
        double sum = 0.0;
        for (std::size_t i = 0; i < flows.size(); ++i)
            if (engine.flowActive(i))
                sum += rates[i];
        return sum;
    };

    SweepOutcome out;
    out.healthyRate = aggregate();

    fault::FaultInjector injector(cluster);
    for (const fault::FaultEvent &ev :
         scenarioEvents(cluster, scenario))
        injector.apply(ev);

    fault::FailoverResult fo = fault::failoverReroute(
        cluster, flows, engine, net::RoutePolicy::ADAPTIVE);
    out.rerouted = fo.rerouted;
    out.stalled = fo.stalled.size();
    out.degradedRate = aggregate();
    return out;
}

dsv3::Table
faultSweepTable()
{
    Table t("Sec 6.1: fault-injection sweep -- all-to-all bandwidth "
            "retained after failover (32 GPUs, 4 planes)");
    t.setHeader({"Scenario", "MPFT agg GB/s", "retained",
                 "rerouted/stalled", "MRFT agg GB/s", "retained",
                 "rerouted/stalled"});
    // Scenario x fabric grid through the shared sweep driver: every
    // cell builds its own cluster and flow set, so cells are
    // independent and the table is byte-identical at any --threads
    // width (the process route cache is shared across cells, but its
    // path sets are value-deterministic under any interleaving).
    dsv3::bench::SweepDriver<SweepOutcome> sweep(kScenarios, 2);
    sweep.run([](std::size_t s, std::size_t fab) {
        return runScenario(fab == 0 ? net::Fabric::MPFT
                                    : net::Fabric::MRFT,
                           s);
    });
    for (std::size_t s = 0; s < kScenarios; ++s) {
        const SweepOutcome &mpft = sweep.at(s, 0);
        const SweepOutcome &mrft = sweep.at(s, 1);
        auto cells = [](const SweepOutcome &o) {
            return std::vector<std::string>{
                Table::fmt(o.degradedRate / 1e9, 1),
                Table::fmtPercent(o.healthyRate > 0.0
                                      ? o.degradedRate / o.healthyRate
                                      : 0.0,
                                  1),
                Table::fmtInt(o.rerouted) + "/" +
                    Table::fmtInt(o.stalled),
            };
        };
        std::vector<std::string> row = {kScenarioNames[s]};
        for (const std::string &c : cells(mpft))
            row.push_back(c);
        for (const std::string &c : cells(mrft))
            row.push_back(c);
        t.addRow(row);
    }
    return t;
}

// ---- Monte-Carlo validation of the analytic model ----

dsv3::Table
monteCarloTable()
{
    Table t("Sec 6.1: Monte-Carlo validation of Young/Daly goodput "
            "(8 trials x 25 cluster-MTBFs)");
    t.setHeader({"GPUs", "tau (s)", "analytic goodput", "MC goodput",
                 "rel err", "failures/trial", "valid regime"});
    for (std::size_t gpus : {2048u, 16384u}) {
        pipeline::ReliabilityParams p;
        p.gpus = gpus;
        pipeline::MonteCarloReliability mc =
            pipeline::runMonteCarloReliability(
                p, /*hardware_sdc_detection=*/false, /*trials=*/8,
                /*seed=*/2025, /*horizon_mtbfs=*/25.0);
        t.addRow({Table::fmtInt(gpus),
                  Table::fmt(mc.analytic.optimalCheckpointSec, 0),
                  Table::fmtPercent(mc.analyticGoodput, 2),
                  Table::fmtPercent(mc.meanGoodput, 2),
                  Table::fmtPercent(mc.relError, 2),
                  Table::fmt(mc.meanFailures, 1),
                  mc.analytic.validRegime ? "yes" : "no"});
    }
    return t;
}

// ---- Plane-count sweep over the cost model ----

dsv3::Table
planeSweepTable()
{
    Table t("MPFT plane-count sweep (radix 64, 16384 endpoints; "
            "infeasible plane counts skipped)");
    t.setHeader({"Planes", "Switches", "Links", "Cost/endpoint"});
    for (std::size_t planes = 1; planes <= 10; ++planes) {
        auto tc = net::countMultiPlaneFatTree(64, planes, 16384);
        if (!tc) {
            t.addRow({Table::fmtInt(planes), "-", "-",
                      "infeasible"});
            continue;
        }
        t.addRow({Table::fmtInt(planes), Table::fmtInt(tc->switches),
                  Table::fmtInt(tc->links),
                  "$" + Table::fmt(costPerEndpoint(*tc) / 1e3, 2) +
                      "k"});
    }
    return t;
}

void
printTables()
{
    dsv3::bench::printTable(dsv3::core::reproduceReliability());
    dsv3::bench::printTable(monteCarloTable());
    dsv3::bench::printTable(faultSweepTable());
    dsv3::bench::printTable(planeSweepTable());
}

void
BM_FaultSweep(benchmark::State &state)
{
    // The 6x2 scenario grid (SweepDriver over the pool) with the
    // route cache warm across iterations.
    for (auto _ : state)
        benchmark::DoNotOptimize(faultSweepTable());
}
BENCHMARK(BM_FaultSweep)->Unit(benchmark::kMillisecond);

void
BM_FaultSweepColdCache(benchmark::State &state)
{
    for (auto _ : state) {
        dsv3::net::RouteCache::global().clear();
        benchmark::DoNotOptimize(faultSweepTable());
    }
}
BENCHMARK(BM_FaultSweepColdCache)->Unit(benchmark::kMillisecond);

void
BM_EvaluateReliability(benchmark::State &state)
{
    dsv3::pipeline::ReliabilityParams p;
    p.gpus = (std::size_t)state.range(0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(evaluateReliability(p, false));
        benchmark::DoNotOptimize(evaluateReliability(p, true));
    }
}
BENCHMARK(BM_EvaluateReliability)->Arg(2048)->Arg(65536);

void
BM_FaultFailoverSolve(benchmark::State &state)
{
    net::Cluster cluster =
        net::buildCluster(sweepConfig(net::Fabric::MPFT));
    std::vector<net::Flow> flows = allToAllFlows(cluster);
    assignPaths(cluster.graph, flows, net::RoutePolicy::ADAPTIVE);
    net::FlowSimEngine engine(cluster.graph, flows);
    engine.solve();
    bool down = false;
    for (auto _ : state) {
        cluster.setPlaneUp(0, down);
        down = !down;
        benchmark::DoNotOptimize(fault::failoverReroute(
            cluster, flows, engine, net::RoutePolicy::ADAPTIVE));
        benchmark::DoNotOptimize(engine.solve());
    }
}
BENCHMARK(BM_FaultFailoverSolve);

void
BM_MonteCarloTrial(benchmark::State &state)
{
    pipeline::ReliabilityParams p;
    pipeline::ReliabilityReport analytic =
        evaluateReliability(p, false);
    pipeline::FaultTrainerConfig cfg;
    cfg.horizonSec = 25.0 * analytic.clusterMtbfHours * 3600.0;
    cfg.checkpointIntervalSec = analytic.optimalCheckpointSec;
    fault::FaultRates rates;
    rates.rankFailPerHour = 1.0 / p.gpuMtbfHours;
    rates.rankRepairSec = 0.0;
    rates.sdcPerHour = p.sdcPerGpuPerHour;
    fault::FaultDomain domain = fault::FaultDomain::ranksOnly(p.gpus);
    std::uint64_t trial = 0;
    for (auto _ : state) {
        fault::FaultSchedule sched = fault::FaultSchedule::generate(
            domain, rates, cfg.horizonSec,
            hashCombine(2025, trial++));
        benchmark::DoNotOptimize(
            pipeline::replayFaultSchedule(cfg, sched));
    }
}
BENCHMARK(BM_MonteCarloTrial);

} // namespace

DSV3_BENCH_MAIN(printTables)
