/**
 * @file
 * Reproduces the Sec 6.1 robustness analysis: goodput vs cluster
 * size with heuristic vs hardware silent-data-corruption detection.
 */

#include "bench_util.hh"

#include "core/report_extensions.hh"
#include "pipeline/reliability.hh"

namespace {

void
printTables()
{
    dsv3::bench::printTable(dsv3::core::reproduceReliability());
}

void
BM_EvaluateReliability(benchmark::State &state)
{
    dsv3::pipeline::ReliabilityParams p;
    p.gpus = (std::size_t)state.range(0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(evaluateReliability(p, false));
        benchmark::DoNotOptimize(evaluateReliability(p, true));
    }
}
BENCHMARK(BM_EvaluateReliability)->Arg(2048)->Arg(65536);

} // namespace

DSV3_BENCH_MAIN(printTables)
