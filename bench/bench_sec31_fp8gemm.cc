/**
 * @file
 * Reproduces the Sec 3.1 FP8 analyses: GEMM accuracy by granularity
 * and accumulator, the FP22 error-growth ablation, and throughput of
 * the emulated pipelines.
 */

#include "bench_util.hh"

#include "common/rng.hh"
#include "core/report.hh"
#include "numerics/gemm.hh"

namespace {

void
printTables()
{
    dsv3::bench::printTable(dsv3::core::reproduceFp8Gemm());
    dsv3::bench::printTable(dsv3::core::reproduceFp8AccumulationSweep());
}

using dsv3::numerics::AccumMode;
using dsv3::numerics::GemmOptions;
using dsv3::numerics::Matrix;

void
BM_GemmQuantized(benchmark::State &state)
{
    dsv3::Rng rng(1);
    const std::size_t k = (std::size_t)state.range(0);
    Matrix a(16, k), b(k, 16);
    a.fillNormal(rng);
    b.fillNormal(rng, 0.0, 0.02);
    GemmOptions opt;
    opt.accum = (AccumMode)state.range(1);
    opt.fineGrained = opt.accum != AccumMode::FP22_NO_PROMOTION;
    for (auto _ : state)
        benchmark::DoNotOptimize(gemmQuantized(a, b, opt));
    state.SetItemsProcessed(state.iterations() * 16 * 16 *
                            (std::int64_t)k);
}
BENCHMARK(BM_GemmQuantized)
    ->Args({1024, (int)AccumMode::FP32})
    ->Args({1024, (int)AccumMode::FP22})
    ->Args({1024, (int)AccumMode::FP22_NO_PROMOTION});

void
BM_GemmBf16(benchmark::State &state)
{
    dsv3::Rng rng(2);
    Matrix a(16, 1024), b(1024, 16);
    a.fillNormal(rng);
    b.fillNormal(rng, 0.0, 0.02);
    for (auto _ : state)
        benchmark::DoNotOptimize(gemmBf16(a, b));
    state.SetItemsProcessed(state.iterations() * 16 * 16 * 1024);
}
BENCHMARK(BM_GemmBf16);

} // namespace

DSV3_BENCH_MAIN(printTables)
