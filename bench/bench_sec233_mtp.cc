/**
 * @file
 * Reproduces the Sec 2.3.3 MTP analysis (acceptance sweep -> TPS
 * gain) and times the Monte Carlo simulation.
 */

#include "bench_util.hh"

#include "common/rng.hh"
#include "core/report.hh"
#include "inference/mtp.hh"

namespace {

void
printTables()
{
    dsv3::bench::printTable(dsv3::core::reproduceMtp());
}

void
BM_MtpAnalytic(benchmark::State &state)
{
    dsv3::inference::MtpConfig cfg;
    cfg.acceptanceRate = 0.85;
    for (auto _ : state)
        benchmark::DoNotOptimize(dsv3::inference::mtpAnalytic(cfg));
}
BENCHMARK(BM_MtpAnalytic);

void
BM_MtpSimulate(benchmark::State &state)
{
    dsv3::inference::MtpConfig cfg;
    cfg.acceptanceRate = 0.85;
    dsv3::Rng rng(7);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            dsv3::inference::mtpSimulate(cfg, rng,
                                         (std::size_t)state.range(0)));
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MtpSimulate)->Arg(1000)->Arg(100000);

} // namespace

DSV3_BENCH_MAIN(printTables)
