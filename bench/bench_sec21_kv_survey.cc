/**
 * @file
 * Reproduces the Sec 2.1.2 KV-cache strategy survey (shared KV,
 * windowed KV, quantized KV vs MLA) and the MLA cached-latent
 * equivalence check underlying Table 1.
 */

#include "bench_util.hh"

#include "common/rng.hh"
#include "core/report_extensions.hh"
#include "model/attention_ref.hh"

namespace {

void
printTables()
{
    dsv3::bench::printTable(dsv3::core::reproduceKvSurvey());
    dsv3::bench::printTable(dsv3::core::reproduceMlaEquivalence());
}

void
BM_MlaDecodeCachedLatent(benchmark::State &state)
{
    dsv3::model::MlaReference mla(128, 8, 32, 8, 16, 16, 1);
    dsv3::Rng rng(2);
    std::vector<double> x(128);
    for (auto &v : x)
        v = rng.normal();
    // Prefill a history.
    for (int t = 0; t < 32; ++t)
        mla.decode(x);
    for (auto _ : state)
        benchmark::DoNotOptimize(mla.decodeExplicit(x, false));
}
BENCHMARK(BM_MlaDecodeCachedLatent);

void
BM_GqaDecode(benchmark::State &state)
{
    dsv3::model::GqaReference gqa(128, 8, 2, 16, 3);
    dsv3::Rng rng(4);
    std::vector<double> x(128);
    for (auto &v : x)
        v = rng.normal();
    for (auto _ : state)
        benchmark::DoNotOptimize(gqa.decode(x));
}
BENCHMARK(BM_GqaDecode);

} // namespace

DSV3_BENCH_MAIN(printTables)
