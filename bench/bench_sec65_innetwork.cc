/**
 * @file
 * Reproduces the Sec 6.5 in-network computation/compression analysis
 * for EP dispatch (multicast) and combine (reduction).
 */

#include "bench_util.hh"

#include "core/report_extensions.hh"
#include "ep/innetwork.hh"

namespace {

void
printTables()
{
    dsv3::bench::printTable(dsv3::core::reproduceInNetwork());
}

void
BM_EvaluateInNetwork(benchmark::State &state)
{
    dsv3::ep::InNetworkParams p;
    for (auto _ : state) {
        for (auto c :
             {dsv3::ep::NetworkCapability::UNICAST,
              dsv3::ep::NetworkCapability::MULTICAST_DISPATCH,
              dsv3::ep::NetworkCapability::MULTICAST_AND_REDUCE})
            benchmark::DoNotOptimize(evaluateInNetwork(c, p));
    }
}
BENCHMARK(BM_EvaluateInNetwork);

} // namespace

DSV3_BENCH_MAIN(printTables)
