/**
 * @file
 * Typed scenario-sweep driver for the bench binaries.
 *
 * SweepDriver<R> owns a rows x cols result grid and runs a cell
 * function over it through runSweepGrid() (thread pool, caller
 * participates, width follows --threads / setParallelForWidth()).
 * Cells are independent and each writes only its own slot, so the
 * grid contents are byte-identical at any width; readers consume them
 * in row-major order after run() returns.
 *
 * The net reproduction benches (Fig 5, Fig 8, Table 3) and the Sec
 * 6.1 fault sweep all drive their scenario grids through this one
 * helper instead of hand-rolled loops.
 */

#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/sweep.hh"

namespace dsv3::bench {

template <typename R>
class SweepDriver
{
  public:
    SweepDriver(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols), results_(rows * cols)
    {
    }

    /** Run fn(row, col) -> R for every cell, through the pool. */
    template <typename Fn>
    void
    run(Fn &&fn)
    {
        runSweepGrid(rows_, cols_, [&](const SweepPoint &p) {
            results_[p.index] = fn(p.row, p.col);
        });
    }

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    const R &
    at(std::size_t row, std::size_t col) const
    {
        return results_[row * cols_ + col];
    }

    std::vector<R> take() { return std::move(results_); }

  private:
    std::size_t rows_;
    std::size_t cols_;
    std::vector<R> results_;
};

} // namespace dsv3::bench
