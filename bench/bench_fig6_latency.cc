/**
 * @file
 * Reproduces paper Figure 6 (all-to-all latency vs message size on 16
 * GPUs, MPFT vs MRFT) and times the small-message path.
 */

#include "bench_util.hh"

#include "collective/patterns.hh"
#include "common/units.hh"
#include "core/report.hh"

namespace {

void
printTables()
{
    dsv3::bench::printTable(dsv3::core::reproduceFigure6());
}

void
BM_SmallAllToAll(benchmark::State &state)
{
    dsv3::net::ClusterConfig cc;
    cc.fabric = dsv3::net::Fabric::MPFT;
    cc.hosts = 2;
    auto c = buildCluster(cc);
    std::vector<std::size_t> ranks(c.gpus.size());
    for (std::size_t i = 0; i < ranks.size(); ++i)
        ranks[i] = i;
    double size = (double)state.range(0) * dsv3::kKB;
    for (auto _ : state) {
        auto r = dsv3::collective::runAllToAll(
            c, ranks, size, dsv3::net::RoutePolicy::ADAPTIVE);
        benchmark::DoNotOptimize(r.seconds);
    }
}
BENCHMARK(BM_SmallAllToAll)->Arg(16)->Arg(256)->Arg(4096);

} // namespace

DSV3_BENCH_MAIN(printTables)
