/**
 * @file
 * Event-driven serving-fleet simulation (Sec 2.3): validates the
 * discrete-event simulator against the analytic epSpeedLimit() and
 * mtpAnalytic() models in the closed-loop no-contention limit, then
 * reports latency/goodput percentiles under live traffic and TPS
 * surfaces over batch x context for H800 and GB200 fleets.
 */

#include "bench_util.hh"
#include "sweep_driver.hh"

#include <chrono>
#include <cmath>
#include <cstdlib>

#include "common/rng.hh"
#include "common/units.hh"
#include "ep/speed_limit.hh"
#include "inference/mtp.hh"
#include "inference/serving/kv_pager.hh"
#include "inference/serving/simulator.hh"
#include "inference/serving/traffic.hh"
#include "model/config.hh"
#include "model/hardware.hh"
#include "model/kv_cache.hh"
#include "obs/timeline.hh"

namespace {

using namespace dsv3;
using namespace dsv3::inference::serving;

/**
 * Comm-bound closed-loop fleet: the memory/compute rooflines vanish,
 * so simulated TPOT must land on the Sec 2.3.2 analytic floor.
 */
ServingFleetConfig
noContentionFleet(double comm_bw)
{
    ServingFleetConfig fleet;
    fleet.modelConfig = model::deepSeekV3();
    fleet.memBytesPerSec = 1e30;
    fleet.computeFlopsPerSec = 0.0;
    fleet.comm.bandwidthBytesPerSec = comm_bw;
    fleet.maxBatchPerEngine = 64;
    fleet.prefillServers = 64;
    fleet.prefillTokensPerSecPerServer = 1e9;
    fleet.kvHandoffSeconds = 0.0;
    return fleet;
}

TrafficConfig
closedLoop(std::size_t requests, std::size_t gen)
{
    TrafficConfig traffic;
    traffic.process = ArrivalProcess::CLOSED_LOOP;
    traffic.requests = requests;
    traffic.closedLoopConcurrency = 64;
    traffic.promptTokensMin = traffic.promptTokensMax = 128;
    traffic.genTokensMin = traffic.genTokensMax = gen;
    return traffic;
}

/** Simulated closed-loop TPOT vs the analytic EP speed limit. */
Table
speedLimitValidation()
{
    Table t("Serving sim vs Sec 2.3.2 speed limit (closed loop, "
            "no contention)");
    t.setHeader({"Interconnect", "Analytic TPOT", "Simulated TPOT",
                 "Analytic tok/s", "Simulated tok/s", "Rel err"});

    struct Fabric
    {
        const char *name;
        double bw;
    };
    const Fabric fabrics[] = {{"CX7 IB 400G (50 GB/s)", 50e9},
                              {"GB200 NVL72 (900 GB/s)", 900e9}};

    bench::SweepDriver<ServingMetrics> grid(2, 1);
    grid.run([&](std::size_t row, std::size_t) {
        return simulateServing(noContentionFleet(fabrics[row].bw),
                               closedLoop(128, 128), 42);
    });
    for (std::size_t row = 0; row < 2; ++row) {
        ep::SpeedLimitParams p;
        p.bandwidthBytesPerSec = fabrics[row].bw;
        ep::SpeedLimit analytic = ep::epSpeedLimit(p);
        const ServingMetrics &m = grid.at(row, 0);
        double sim_tps = 1.0 / m.tpot.mean;
        double rel =
            std::abs(m.tpot.mean - analytic.tpotSeconds) /
            analytic.tpotSeconds;
        t.addRow({fabrics[row].name,
                  formatTime(analytic.tpotSeconds),
                  formatTime(m.tpot.mean),
                  Table::fmt(analytic.tokensPerSecond, 1),
                  Table::fmt(sim_tps, 1),
                  Table::fmtPercent(rel, 3)});
    }
    return t;
}

/** Sampled MTP acceptance chain vs the Sec 2.3.3 closed form. */
Table
mtpValidation()
{
    Table t("Serving sim vs Sec 2.3.3 MTP speedup (sampled "
            "acceptance chain)");
    t.setHeader({"Acceptance", "Analytic speedup", "Simulated",
                 "Rel err"});

    const double accepts[] = {0.70, 0.80, 0.85, 0.90};
    ServingMetrics base =
        simulateServing(noContentionFleet(50e9), closedLoop(256, 256),
                        42);
    bench::SweepDriver<ServingMetrics> grid(4, 1);
    grid.run([&](std::size_t row, std::size_t) {
        ServingFleetConfig fleet = noContentionFleet(50e9);
        fleet.mtpEnabled = true;
        fleet.mtp.acceptanceRate = accepts[row];
        return simulateServing(fleet, closedLoop(256, 256), 42);
    });
    for (std::size_t row = 0; row < 4; ++row) {
        inference::MtpConfig cfg;
        cfg.acceptanceRate = accepts[row];
        double analytic = inference::mtpAnalytic(cfg).speedup;
        double sim = grid.at(row, 0).tokensPerSecond /
                     base.tokensPerSecond;
        t.addRow({Table::fmtPercent(accepts[row], 0),
                  Table::fmt(analytic, 3) + "x",
                  Table::fmt(sim, 3) + "x",
                  Table::fmtPercent(std::abs(sim - analytic) /
                                        analytic,
                                    3)});
    }
    return t;
}

/** Realistic H800-priced decode fleet for the traffic studies. */
ServingFleetConfig
h800Fleet()
{
    model::NodeSpec node = model::h800Node();
    ServingFleetConfig fleet;
    fleet.modelConfig = model::deepSeekV3();
    fleet.memBytesPerSec = node.gpu.hbmBytesPerSec;
    fleet.comm.bandwidthBytesPerSec = node.nicEffGBs * 1e9;
    fleet.maxBatchPerEngine = 64;
    fleet.kvBudgetBytesPerEngine = 0.3 * node.gpu.hbmCapacityBytes;
    fleet.prefillServers = 4;
    fleet.prefillTokensPerSecPerServer = 12000.0;
    fleet.sloTtftSeconds = 2.0;
    fleet.sloTpotSeconds = 1.0;
    return fleet;
}

/** TTFT/TPOT/goodput percentiles under the three arrival processes. */
Table
trafficPercentiles()
{
    Table t("Latency/goodput percentiles, DeepSeek-V3 on one H800 "
            "decode engine (4 req/s, 200 requests)");
    t.setHeader({"Traffic", "TTFT p50", "TTFT p99", "TPOT p50",
                 "TPOT p99", "Goodput p50", "SLO tok/s",
                 "Preempt"});

    const ArrivalProcess procs[] = {ArrivalProcess::POISSON,
                                    ArrivalProcess::DIURNAL,
                                    ArrivalProcess::BURSTY};
    bench::SweepDriver<ServingMetrics> grid(3, 1);
    grid.run([&](std::size_t row, std::size_t) {
        TrafficConfig traffic;
        traffic.process = procs[row];
        traffic.requests = 200;
        traffic.requestsPerSecond = 4.0;
        return simulateServing(h800Fleet(), traffic, 7);
    });
    for (std::size_t row = 0; row < 3; ++row) {
        const ServingMetrics &m = grid.at(row, 0);
        t.addRow({arrivalProcessName(procs[row]),
                  formatTime(m.ttft.p50), formatTime(m.ttft.p99),
                  formatTime(m.tpot.p50), formatTime(m.tpot.p99),
                  Table::fmt(m.goodput.p50, 0) + " tok/s",
                  Table::fmt(m.sloGoodputTokensPerSecond, 0),
                  Table::fmtInt(m.preemptions)});
    }
    return t;
}

/** The Sec 2.3.1 deployment comparison, now event-driven. */
Table
deploymentComparison()
{
    Table t("Sec 2.3.1 deployments under live Poisson traffic");
    t.setHeader({"Deployment", "TTFT p50", "TTFT p99", "TPOT p50",
                 "TPOT p99", "Tokens/s"});

    const Deployment deps[] = {Deployment::COLOCATED,
                               Deployment::DISAGGREGATED};
    bench::SweepDriver<ServingMetrics> grid(2, 1);
    grid.run([&](std::size_t row, std::size_t) {
        ServingFleetConfig fleet = h800Fleet();
        fleet.deployment = deps[row];
        fleet.prefillServers = 1;
        TrafficConfig traffic;
        traffic.process = ArrivalProcess::POISSON;
        traffic.requests = 200;
        traffic.requestsPerSecond = 2.0;
        traffic.promptTokensMin = 2048;
        traffic.promptTokensMax = 8192;
        return simulateServing(fleet, traffic, 5);
    });
    for (std::size_t row = 0; row < 2; ++row) {
        const ServingMetrics &m = grid.at(row, 0);
        t.addRow({deploymentName(deps[row]), formatTime(m.ttft.p50),
                  formatTime(m.ttft.p99), formatTime(m.tpot.p50),
                  formatTime(m.tpot.p99),
                  Table::fmt(m.tokensPerSecond, 1)});
    }
    return t;
}

/** Closed-loop decode TPS over batch x context for one device. */
Table
tpsSurface(const char *name, const model::NodeSpec &node,
           double comm_bw)
{
    const std::size_t batches[] = {16, 32, 64, 128};
    const std::size_t contexts[] = {1024, 4096, 16384};

    Table t(std::string("Decode tokens/s vs batch x context, ") +
            name);
    t.setHeader({"Batch", "ctx 1K", "ctx 4K", "ctx 16K"});

    bench::SweepDriver<double> grid(4, 3);
    grid.run([&](std::size_t row, std::size_t col) {
        ServingFleetConfig fleet;
        fleet.modelConfig = model::deepSeekV3();
        fleet.memBytesPerSec = node.gpu.hbmBytesPerSec;
        fleet.comm.bandwidthBytesPerSec = comm_bw;
        fleet.maxBatchPerEngine = batches[row];
        fleet.prefillServers = 16;
        fleet.prefillTokensPerSecPerServer = 1e8;
        fleet.kvHandoffSeconds = 0.0;
        TrafficConfig traffic;
        traffic.process = ArrivalProcess::CLOSED_LOOP;
        traffic.requests = 2 * batches[row];
        traffic.closedLoopConcurrency = batches[row];
        traffic.promptTokensMin = traffic.promptTokensMax =
            contexts[col];
        traffic.genTokensMin = traffic.genTokensMax = 64;
        return simulateServing(fleet, traffic, 11).tokensPerSecond;
    });
    for (std::size_t row = 0; row < 4; ++row)
        t.addRow({Table::fmtInt(batches[row]),
                  Table::fmt(grid.at(row, 0), 1),
                  Table::fmt(grid.at(row, 1), 1),
                  Table::fmt(grid.at(row, 2), 1)});
    return t;
}

/**
 * Dedicated serial observability run: the H800 Poisson scenario of
 * trafficPercentiles() re-run with the flight recorder attached (its
 * gauges become the --json report's "timeseries" section) and, when
 * --timeline=<path> was given, with a sim-time timeline written to
 * that path. Run serially on purpose — the recorder/timeline hooks
 * must not be shared across sweep threads — so both exports and the
 * printed table are byte-identical across reruns and thread widths.
 */
Table
timeInStateAttribution()
{
    ServingFleetConfig fleet = h800Fleet();
    TrafficConfig traffic;
    traffic.process = ArrivalProcess::POISSON;
    traffic.requests = 200;
    traffic.requestsPerSecond = 4.0;

    obs::Timeline timeline(obs::Timeline::configFromEnv());
    fleet.recorder = &bench::flightRecorder();
    fleet.recorderIntervalSeconds = 0.25;
    if (!bench::timelinePath().empty())
        fleet.timeline = &timeline;

    ServingMetrics m = simulateServing(fleet, traffic, 7);

    if (!bench::timelinePath().empty()) {
        timeline.writeChromeJson(bench::timelinePath());
        std::fprintf(stderr, "wrote sim timeline: %s (%zu events)\n",
                     bench::timelinePath().c_str(),
                     timeline.eventCount());
    }

    Table t("Time-in-state attribution, H800 Poisson (completed "
            "requests)");
    t.setHeader({"State", "Total", "Share", "p50/req", "p95/req",
                 "p99/req"});
    for (std::size_t s = 0; s < kNumRequestStates; ++s) {
        // Fault-only states (failover, retry backoff) are exactly 0
        // on this chaos-free run; show them only when exercised so
        // the table stays byte-identical to the pre-chaos baseline.
        if (s >= kNumCoreRequestStates && m.stateSeconds[s] == 0.0)
            continue;
        const PercentileSummary &ps = m.statePerRequest[s];
        const double share = m.totalLatencySeconds > 0.0
            ? m.stateSeconds[s] / m.totalLatencySeconds : 0.0;
        t.addRow({requestStateName((RequestState)s),
                  formatTime(m.stateSeconds[s]),
                  Table::fmtPercent(share, 1), formatTime(ps.p50),
                  formatTime(ps.p95), formatTime(ps.p99)});
    }
    t.addRow({"total latency", formatTime(m.totalLatencySeconds),
              "100%", "", "", ""});
    t.addRow({"verdict", bottleneckName(m.bottleneck), "", "", "",
              ""});
    return t;
}

/**
 * Million-request stress row (DSV3_STRESS=1): the ROADMAP's
 * "millions of users" scale claim as a measured table row — one
 * closed-loop run over the largest fleet in this bench (64 comm-bound
 * engines x batch 64), reporting requests retired per second of
 * wall clock. The wall-derived cells depend on the host, so the
 * table is transient: printed straight to stdout, never recorded
 * into --json reports, and never compared by report_diff. Off by
 * default so the default bench invocation stays cheap enough for the
 * wall-time trend harness.
 */
void
maybeStressLine()
{
    const char *env = std::getenv("DSV3_STRESS");
    if (env == nullptr || env[0] == '0')
        return;
    if (bench::tablesQuiet())
        return; // not part of the --repeat timed table build
    ServingFleetConfig fleet = noContentionFleet(50e9);
    fleet.decodeEngines = 64;
    TrafficConfig traffic;
    traffic.process = ArrivalProcess::CLOSED_LOOP;
    traffic.requests = 1000000;
    traffic.closedLoopConcurrency = 64 * 64;
    traffic.promptTokensMin = traffic.promptTokensMax = 128;
    traffic.genTokensMin = traffic.genTokensMax = 16;

    using clock = std::chrono::steady_clock;
    const clock::time_point t0 = clock::now();
    const ServingMetrics m = simulateServing(fleet, traffic, 97);
    const double wall =
        std::chrono::duration<double>(clock::now() - t0).count();

    Table t("Million-request stress, closed loop over 64 comm-bound "
            "engines x batch 64 (wall-derived cells are "
            "host-dependent; transient, not in recorded reports)");
    t.setHeader({"Requests", "Decode tokens", "Decode steps",
                 "Sim seconds", "Wall seconds", "Req/s of wall",
                 "Tok/s of wall"});
    t.addRow({Table::fmtInt(m.requestsCompleted),
              Table::fmtInt(m.decodeTokens),
              Table::fmtInt(m.decodeSteps),
              Table::fmt(m.simSeconds, 1), Table::fmt(wall, 3),
              Table::fmt((double)m.requestsCompleted / wall, 0),
              Table::fmt((double)m.decodeTokens / wall, 0)});
    // Deliberately not bench::printTable(): stdout only.
    std::fputs(t.render().c_str(), stdout);
    std::fputs("\n", stdout);
}

void
printTables()
{
    bench::printTable(speedLimitValidation());
    bench::printTable(mtpValidation());
    bench::printTable(trafficPercentiles());
    bench::printTable(deploymentComparison());
    bench::printTable(tpsSurface("H800 + CX7 IB", model::h800Node(),
                                 50e9));
    bench::printTable(tpsSurface("GB200 NVL72",
                                 model::gb200Nvl72Node(), 900e9));
    bench::printTable(timeInStateAttribution());
    maybeStressLine();
}

// Microbenchmarks -------------------------------------------------------

void
BM_SimulateClosedLoop(benchmark::State &state)
{
    ServingFleetConfig fleet = noContentionFleet(50e9);
    TrafficConfig traffic = closedLoop((std::size_t)state.range(0),
                                       128);
    for (auto _ : state)
        benchmark::DoNotOptimize(simulateServing(fleet, traffic, 1));
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulateClosedLoop)->Arg(64)->Arg(256);

void
BM_GenerateTrace(benchmark::State &state)
{
    TrafficConfig cfg;
    cfg.process = (ArrivalProcess)state.range(0);
    cfg.requests = 4096;
    for (auto _ : state) {
        Rng rng(3);
        benchmark::DoNotOptimize(generateTrace(cfg, rng));
    }
    state.SetItemsProcessed(state.iterations() * cfg.requests);
}
BENCHMARK(BM_GenerateTrace)
    ->Arg((int)ArrivalProcess::POISSON)
    ->Arg((int)ArrivalProcess::BURSTY);

void
BM_KvPagerChurn(benchmark::State &state)
{
    KvPagerConfig cfg;
    cfg.budgetBytes = 64.0 * 1024 * 1024 * 1024;
    cfg.bytesPerToken =
        model::kvCacheBytesPerToken(model::deepSeekV3());
    for (auto _ : state) {
        KvPager pager(cfg);
        std::size_t resident = 0;
        for (std::size_t s = 0; s < 256; ++s)
            if (!pager.tryAllocate(s, 4096))
                break;
            else
                ++resident;
        for (std::size_t s = 0; s < resident; ++s)
            pager.tryGrow(s, 4352);
        for (std::size_t s = 0; s < resident; ++s)
            pager.release(s);
        benchmark::DoNotOptimize(pager.usedBlocks());
    }
    state.SetItemsProcessed(state.iterations() * 768);
}
BENCHMARK(BM_KvPagerChurn);

} // namespace

DSV3_BENCH_MAIN(printTables)
