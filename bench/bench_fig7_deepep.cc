/**
 * @file
 * Reproduces paper Figure 7 (DeepEP dispatch/combine bandwidth on
 * MPFT, 16-128 GPUs) and times the EP simulation.
 */

#include "bench_util.hh"

#include "core/report.hh"
#include "ep/deepep.hh"

namespace {

void
printTables()
{
    dsv3::bench::printTable(dsv3::core::reproduceFigure7());
}

dsv3::ep::EpWorkload
workload(std::size_t tokens)
{
    dsv3::ep::EpWorkload w;
    w.tokensPerGpu = tokens;
    w.gate.experts = 256;
    w.gate.topK = 8;
    w.gate.groups = 8;
    w.gate.topKGroups = 4;
    return w;
}

void
BM_DeepEpRound(benchmark::State &state)
{
    dsv3::net::ClusterConfig cc;
    cc.fabric = dsv3::net::Fabric::MPFT;
    cc.hosts = (std::size_t)state.range(0);
    auto c = buildCluster(cc);
    auto w = workload(256);
    for (auto _ : state) {
        auto r = dsv3::ep::simulateDeepEp(c, w);
        benchmark::DoNotOptimize(r.dispatchGBsPerGpu);
    }
    state.counters["gpus"] = (double)c.gpus.size();
}
BENCHMARK(BM_DeepEpRound)->Arg(2)->Arg(4)->Arg(8);

} // namespace

DSV3_BENCH_MAIN(printTables)
