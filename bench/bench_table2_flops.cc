/**
 * @file
 * Reproduces paper Table 2 (training GFLOPs/token) and times the
 * parameter/FLOPs calculators.
 */

#include "bench_util.hh"

#include "core/report.hh"
#include "model/config.hh"
#include "model/flops.hh"
#include "model/params.hh"

namespace {

void
printTables()
{
    dsv3::bench::printTable(dsv3::core::reproduceTable2());
}

void
BM_CountParams(benchmark::State &state)
{
    auto cfg = dsv3::model::deepSeekV3();
    for (auto _ : state)
        benchmark::DoNotOptimize(dsv3::model::countParams(cfg));
}
BENCHMARK(BM_CountParams);

void
BM_TrainingFlops(benchmark::State &state)
{
    auto cfg = dsv3::model::deepSeekV3();
    for (auto _ : state)
        benchmark::DoNotOptimize(
            dsv3::model::trainingGflopsPerToken(cfg, 4096));
}
BENCHMARK(BM_TrainingFlops);

} // namespace

DSV3_BENCH_MAIN(printTables)
