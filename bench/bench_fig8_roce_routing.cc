/**
 * @file
 * Reproduces paper Figure 8 (RoCE collectives under ECMP / adaptive /
 * static routing) and times the routing-policy assignment.
 */

#include "bench_util.hh"

#include "collective/patterns.hh"
#include "common/units.hh"
#include "core/report.hh"
#include "net/route_cache.hh"

namespace {

void
printTables()
{
    dsv3::bench::printTable(dsv3::core::reproduceFigure8());
}

void
BM_Fig8TableSweep(benchmark::State &state)
{
    // Full 9-cell grid (3 TP sizes x 3 policies, ECMP cells averaging
    // 8 seeds) with the route cache warm across iterations.
    for (auto _ : state)
        benchmark::DoNotOptimize(dsv3::core::reproduceFigure8());
}
BENCHMARK(BM_Fig8TableSweep)->Unit(benchmark::kMillisecond);

void
BM_Fig8TableSweepColdCache(benchmark::State &state)
{
    for (auto _ : state) {
        dsv3::net::RouteCache::global().clear();
        benchmark::DoNotOptimize(dsv3::core::reproduceFigure8());
    }
}
BENCHMARK(BM_Fig8TableSweepColdCache)->Unit(benchmark::kMillisecond);

dsv3::net::Cluster
roceCluster()
{
    dsv3::net::LinkSpec nic{50e9, 0.25e-6};
    return dsv3::net::buildSingleRail(32, 8, 8, nic, nic, 0.75e-6,
                                      2.35e-6);
}

void
BM_ConcurrentRings(benchmark::State &state)
{
    auto c = roceCluster();
    std::vector<std::vector<std::size_t>> groups(4);
    for (std::size_t h = 0; h < 32; ++h)
        groups[h / 8].push_back(h);
    auto policy = (dsv3::net::RoutePolicy)state.range(0);
    for (auto _ : state) {
        auto bws = dsv3::collective::runConcurrentRings(
            c, groups, 32.0 * dsv3::kMB, policy);
        benchmark::DoNotOptimize(bws.front());
    }
}
BENCHMARK(BM_ConcurrentRings)
    ->Arg((int)dsv3::net::RoutePolicy::ECMP)
    ->Arg((int)dsv3::net::RoutePolicy::ADAPTIVE)
    ->Arg((int)dsv3::net::RoutePolicy::STATIC);

void
BM_AssignPathsEcmp(benchmark::State &state)
{
    auto c = roceCluster();
    std::vector<dsv3::net::Flow> flows;
    std::uint64_t qp = 0;
    for (std::size_t i = 0; i < 32; ++i)
        for (std::size_t j = 0; j < 32; ++j)
            if (i != j)
                flows.push_back({c.gpus[i], c.gpus[j], 1.0, qp++,
                                 {}, {}});
    for (auto _ : state) {
        auto copy = flows;
        assignPaths(c.graph, copy, dsv3::net::RoutePolicy::ECMP, 1);
        benchmark::DoNotOptimize(copy.size());
    }
}
BENCHMARK(BM_AssignPathsEcmp);

} // namespace

DSV3_BENCH_MAIN(printTables)
