/**
 * @file
 * Reproduces the Sec 3.2 LogFMT analysis (quality vs FP8/BF16, the
 * linear-vs-log rounding ablation) and measures codec throughput —
 * the paper abandoned LogFMT because fused encode/decode cost
 * 50-100% extra on GPU; the relative cost vs plain FP8 quantization
 * is visible here too.
 */

#include "bench_util.hh"

#include <vector>

#include "common/rng.hh"
#include "core/report.hh"
#include "numerics/kernels.hh"
#include "numerics/logfmt.hh"
#include "numerics/minifloat.hh"

namespace {

void
printTables()
{
    dsv3::bench::printTable(dsv3::core::reproduceLogFmt());
}

std::vector<double>
activations(std::size_t n)
{
    dsv3::Rng rng(5);
    std::vector<double> out(n);
    for (auto &x : out)
        x = rng.normal();
    return out;
}

void
BM_LogFmtEncodeDecode(benchmark::State &state)
{
    auto data = activations(1 << 14);
    dsv3::numerics::LogFmtCodec codec((int)state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(codec.roundTrip(data));
    state.SetItemsProcessed(state.iterations() *
                            (std::int64_t)data.size());
}
BENCHMARK(BM_LogFmtEncodeDecode)->Arg(8)->Arg(10);

void
BM_Fp8QuantizeBaseline(benchmark::State &state)
{
    auto data = activations(1 << 14);
    std::vector<double> q(data.size());
    for (auto _ : state) {
        dsv3::numerics::quantizeSpan(dsv3::numerics::kE4M3, data,
                                     q.data());
        benchmark::DoNotOptimize(q.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            (std::int64_t)data.size());
}
BENCHMARK(BM_Fp8QuantizeBaseline);

} // namespace

DSV3_BENCH_MAIN(printTables)
