/**
 * @file
 * Reproduces paper Table 5 (IB/RoCE/NVLink end-to-end latency) and
 * times path enumeration and the latency evaluation.
 */

#include "bench_util.hh"

#include "core/report.hh"
#include "net/cluster.hh"

namespace {

void
printTables()
{
    dsv3::bench::printTable(dsv3::core::reproduceTable5());
}

void
BM_EndToEndLatency(benchmark::State &state)
{
    dsv3::net::LinkSpec nic{50e9, 0.15e-6};
    auto c = dsv3::net::buildSingleRail(64, 32, 16, nic, nic, 0.3e-6,
                                        2.2e-6);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            dsv3::net::endToEndLatency(c, 0, 63, 64.0));
}
BENCHMARK(BM_EndToEndLatency);

void
BM_ShortestPathsCrossLeaf(benchmark::State &state)
{
    dsv3::net::LinkSpec nic{50e9, 0.15e-6};
    auto c = dsv3::net::buildSingleRail(64, 32, 16, nic, nic, 0.3e-6,
                                        2.2e-6);
    for (auto _ : state)
        benchmark::DoNotOptimize(dsv3::net::shortestPaths(
            c.graph, c.gpus[0], c.gpus[63]));
}
BENCHMARK(BM_ShortestPathsCrossLeaf);

} // namespace

DSV3_BENCH_MAIN(printTables)
