/**
 * @file
 * CLI wrapper around obs::diffReports: compare a fresh bench --json
 * report against another report or a committed BENCH_*.json baseline.
 *
 *   report_diff [options] <baseline.json> <candidate.json>
 *
 *   --bench=<name>            report to select inside baseline docs
 *                             (required when a baseline holds several)
 *   --timing-threshold=<r>    fail when a benchmark gets slower than
 *                             r x baseline (default 1.25)
 *   --ignore-timings          never fail on timing ratios or on
 *                             missing/extra benchmarks (CI default
 *                             across heterogeneous runners)
 *
 * Exit status: 0 reports match, 1 differences found, 2 usage or
 * parse error. Differences go to stdout ("DIFF ..."), informational
 * notes too ("note ...").
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.hh"
#include "obs/report_diff.hh"

namespace {

void
usage()
{
    std::fprintf(stderr,
                 "usage: report_diff [--bench=<name>] "
                 "[--timing-threshold=<ratio>] [--ignore-timings] "
                 "<baseline.json> <candidate.json>\n");
}

bool
readFile(const std::string &path, std::string *out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    *out = ss.str();
    return true;
}

const dsv3::obs::JsonValue *
loadReport(const std::string &path, const std::string &bench,
           dsv3::obs::JsonValue *storage)
{
    std::string text;
    if (!readFile(path, &text)) {
        std::fprintf(stderr, "report_diff: cannot read '%s'\n",
                     path.c_str());
        return nullptr;
    }
    std::string error;
    if (!dsv3::obs::parseJson(text, storage, &error)) {
        std::fprintf(stderr, "report_diff: '%s': %s\n", path.c_str(),
                     error.c_str());
        return nullptr;
    }
    const dsv3::obs::JsonValue *report =
        dsv3::obs::findBenchReport(*storage, bench);
    if (!report) {
        std::fprintf(stderr,
                     "report_diff: '%s': no report%s%s found (not a "
                     "dsv3-bench-report/v1 or -baseline/v1 document?)\n",
                     path.c_str(), bench.empty() ? "" : " named ",
                     bench.c_str());
    }
    return report;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string bench;
    dsv3::obs::ReportDiffOptions options;
    std::string paths[2];
    int npaths = 0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--bench=", 0) == 0) {
            bench = arg.substr(8);
        } else if (arg.rfind("--timing-threshold=", 0) == 0) {
            options.timingThreshold =
                std::strtod(arg.c_str() + 19, nullptr);
            if (options.timingThreshold <= 0.0) {
                usage();
                return 2;
            }
        } else if (arg == "--ignore-timings") {
            options.compareTimings = false;
        } else if (!arg.empty() && arg[0] == '-') {
            usage();
            return 2;
        } else if (npaths < 2) {
            paths[npaths++] = arg;
        } else {
            usage();
            return 2;
        }
    }
    if (npaths != 2) {
        usage();
        return 2;
    }

    dsv3::obs::JsonValue docA, docB;
    const dsv3::obs::JsonValue *a = loadReport(paths[0], bench, &docA);
    const dsv3::obs::JsonValue *b = loadReport(paths[1], bench, &docB);
    if (!a || !b)
        return 2;

    const dsv3::obs::ReportDiffResult result =
        dsv3::obs::diffReports(*a, *b, options);
    for (const std::string &note : result.notes)
        std::printf("note %s\n", note.c_str());
    for (const std::string &diff : result.differences)
        std::printf("DIFF %s\n", diff.c_str());
    if (!result.ok()) {
        std::printf("report_diff: %zu difference(s) between '%s' and "
                    "'%s'\n",
                    result.differences.size(), paths[0].c_str(),
                    paths[1].c_str());
        return 1;
    }
    std::printf("report_diff: reports match (%zu note(s))\n",
                result.notes.size());
    return 0;
}
