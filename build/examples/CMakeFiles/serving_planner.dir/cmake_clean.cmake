file(REMOVE_RECURSE
  "CMakeFiles/serving_planner.dir/serving_planner.cpp.o"
  "CMakeFiles/serving_planner.dir/serving_planner.cpp.o.d"
  "serving_planner"
  "serving_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serving_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
