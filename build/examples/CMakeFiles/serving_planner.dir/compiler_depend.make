# Empty compiler generated dependencies file for serving_planner.
# This may be replaced when dependencies are built.
