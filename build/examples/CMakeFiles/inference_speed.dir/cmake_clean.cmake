file(REMOVE_RECURSE
  "CMakeFiles/inference_speed.dir/inference_speed.cpp.o"
  "CMakeFiles/inference_speed.dir/inference_speed.cpp.o.d"
  "inference_speed"
  "inference_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inference_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
