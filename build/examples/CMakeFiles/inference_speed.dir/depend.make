# Empty dependencies file for inference_speed.
# This may be replaced when dependencies are built.
