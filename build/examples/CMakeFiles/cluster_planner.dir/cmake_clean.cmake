file(REMOVE_RECURSE
  "CMakeFiles/cluster_planner.dir/cluster_planner.cpp.o"
  "CMakeFiles/cluster_planner.dir/cluster_planner.cpp.o.d"
  "cluster_planner"
  "cluster_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
