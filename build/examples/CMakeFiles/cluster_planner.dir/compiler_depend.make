# Empty compiler generated dependencies file for cluster_planner.
# This may be replaced when dependencies are built.
