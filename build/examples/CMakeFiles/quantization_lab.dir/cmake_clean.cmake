file(REMOVE_RECURSE
  "CMakeFiles/quantization_lab.dir/quantization_lab.cpp.o"
  "CMakeFiles/quantization_lab.dir/quantization_lab.cpp.o.d"
  "quantization_lab"
  "quantization_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quantization_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
