# Empty dependencies file for quantization_lab.
# This may be replaced when dependencies are built.
