
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/codesign_explorer.cpp" "examples/CMakeFiles/codesign_explorer.dir/codesign_explorer.cpp.o" "gcc" "examples/CMakeFiles/codesign_explorer.dir/codesign_explorer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dsv3_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dsv3_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dsv3_collective.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dsv3_inference.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dsv3_ep.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dsv3_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dsv3_numerics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dsv3_moe.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dsv3_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dsv3_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
