# Empty compiler generated dependencies file for bench_sec61_reliability.
# This may be replaced when dependencies are built.
