file(REMOVE_RECURSE
  "../bench/bench_sec61_reliability"
  "../bench/bench_sec61_reliability.pdb"
  "CMakeFiles/bench_sec61_reliability.dir/bench_sec61_reliability.cc.o"
  "CMakeFiles/bench_sec61_reliability.dir/bench_sec61_reliability.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec61_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
