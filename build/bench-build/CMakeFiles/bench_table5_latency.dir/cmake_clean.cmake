file(REMOVE_RECURSE
  "../bench/bench_table5_latency"
  "../bench/bench_table5_latency.pdb"
  "CMakeFiles/bench_table5_latency.dir/bench_table5_latency.cc.o"
  "CMakeFiles/bench_table5_latency.dir/bench_table5_latency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
