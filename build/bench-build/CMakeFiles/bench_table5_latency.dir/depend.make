# Empty dependencies file for bench_table5_latency.
# This may be replaced when dependencies are built.
