file(REMOVE_RECURSE
  "../bench/bench_sec32_logfmt"
  "../bench/bench_sec32_logfmt.pdb"
  "CMakeFiles/bench_sec32_logfmt.dir/bench_sec32_logfmt.cc.o"
  "CMakeFiles/bench_sec32_logfmt.dir/bench_sec32_logfmt.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec32_logfmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
