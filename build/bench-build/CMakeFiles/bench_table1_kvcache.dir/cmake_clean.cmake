file(REMOVE_RECURSE
  "../bench/bench_table1_kvcache"
  "../bench/bench_table1_kvcache.pdb"
  "CMakeFiles/bench_table1_kvcache.dir/bench_table1_kvcache.cc.o"
  "CMakeFiles/bench_table1_kvcache.dir/bench_table1_kvcache.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_kvcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
