# Empty dependencies file for bench_table1_kvcache.
# This may be replaced when dependencies are built.
