file(REMOVE_RECURSE
  "../bench/bench_fig6_latency"
  "../bench/bench_fig6_latency.pdb"
  "CMakeFiles/bench_fig6_latency.dir/bench_fig6_latency.cc.o"
  "CMakeFiles/bench_fig6_latency.dir/bench_fig6_latency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
