file(REMOVE_RECURSE
  "../bench/bench_sec44_offload"
  "../bench/bench_sec44_offload.pdb"
  "CMakeFiles/bench_sec44_offload.dir/bench_sec44_offload.cc.o"
  "CMakeFiles/bench_sec44_offload.dir/bench_sec44_offload.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec44_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
