# Empty dependencies file for bench_sec44_offload.
# This may be replaced when dependencies are built.
