# Empty compiler generated dependencies file for bench_fig7_deepep.
# This may be replaced when dependencies are built.
