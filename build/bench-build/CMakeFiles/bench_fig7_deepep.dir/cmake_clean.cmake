file(REMOVE_RECURSE
  "../bench/bench_fig7_deepep"
  "../bench/bench_fig7_deepep.pdb"
  "CMakeFiles/bench_fig7_deepep.dir/bench_fig7_deepep.cc.o"
  "CMakeFiles/bench_fig7_deepep.dir/bench_fig7_deepep.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_deepep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
