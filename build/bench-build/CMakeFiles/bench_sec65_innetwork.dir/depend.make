# Empty dependencies file for bench_sec65_innetwork.
# This may be replaced when dependencies are built.
