file(REMOVE_RECURSE
  "../bench/bench_sec65_innetwork"
  "../bench/bench_sec65_innetwork.pdb"
  "CMakeFiles/bench_sec65_innetwork.dir/bench_sec65_innetwork.cc.o"
  "CMakeFiles/bench_sec65_innetwork.dir/bench_sec65_innetwork.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec65_innetwork.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
