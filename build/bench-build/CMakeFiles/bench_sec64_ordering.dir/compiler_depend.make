# Empty compiler generated dependencies file for bench_sec64_ordering.
# This may be replaced when dependencies are built.
