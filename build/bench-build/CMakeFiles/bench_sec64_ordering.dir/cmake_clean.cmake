file(REMOVE_RECURSE
  "../bench/bench_sec64_ordering"
  "../bench/bench_sec64_ordering.pdb"
  "CMakeFiles/bench_sec64_ordering.dir/bench_sec64_ordering.cc.o"
  "CMakeFiles/bench_sec64_ordering.dir/bench_sec64_ordering.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec64_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
