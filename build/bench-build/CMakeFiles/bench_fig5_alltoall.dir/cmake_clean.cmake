file(REMOVE_RECURSE
  "../bench/bench_fig5_alltoall"
  "../bench/bench_fig5_alltoall.pdb"
  "CMakeFiles/bench_fig5_alltoall.dir/bench_fig5_alltoall.cc.o"
  "CMakeFiles/bench_fig5_alltoall.dir/bench_fig5_alltoall.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_alltoall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
