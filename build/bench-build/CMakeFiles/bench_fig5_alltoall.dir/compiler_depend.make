# Empty compiler generated dependencies file for bench_fig5_alltoall.
# This may be replaced when dependencies are built.
