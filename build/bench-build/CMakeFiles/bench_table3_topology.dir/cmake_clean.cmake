file(REMOVE_RECURSE
  "../bench/bench_table3_topology"
  "../bench/bench_table3_topology.pdb"
  "CMakeFiles/bench_table3_topology.dir/bench_table3_topology.cc.o"
  "CMakeFiles/bench_table3_topology.dir/bench_table3_topology.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
