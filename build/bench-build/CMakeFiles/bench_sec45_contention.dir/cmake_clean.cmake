file(REMOVE_RECURSE
  "../bench/bench_sec45_contention"
  "../bench/bench_sec45_contention.pdb"
  "CMakeFiles/bench_sec45_contention.dir/bench_sec45_contention.cc.o"
  "CMakeFiles/bench_sec45_contention.dir/bench_sec45_contention.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec45_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
