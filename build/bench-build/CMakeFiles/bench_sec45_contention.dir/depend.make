# Empty dependencies file for bench_sec45_contention.
# This may be replaced when dependencies are built.
