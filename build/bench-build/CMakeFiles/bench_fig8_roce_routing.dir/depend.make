# Empty dependencies file for bench_fig8_roce_routing.
# This may be replaced when dependencies are built.
