file(REMOVE_RECURSE
  "../bench/bench_fig8_roce_routing"
  "../bench/bench_fig8_roce_routing.pdb"
  "CMakeFiles/bench_fig8_roce_routing.dir/bench_fig8_roce_routing.cc.o"
  "CMakeFiles/bench_fig8_roce_routing.dir/bench_fig8_roce_routing.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_roce_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
