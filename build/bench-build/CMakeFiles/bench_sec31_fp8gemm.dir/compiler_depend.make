# Empty compiler generated dependencies file for bench_sec31_fp8gemm.
# This may be replaced when dependencies are built.
