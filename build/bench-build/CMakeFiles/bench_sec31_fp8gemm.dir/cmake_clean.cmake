file(REMOVE_RECURSE
  "../bench/bench_sec31_fp8gemm"
  "../bench/bench_sec31_fp8gemm.pdb"
  "CMakeFiles/bench_sec31_fp8gemm.dir/bench_sec31_fp8gemm.cc.o"
  "CMakeFiles/bench_sec31_fp8gemm.dir/bench_sec31_fp8gemm.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec31_fp8gemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
