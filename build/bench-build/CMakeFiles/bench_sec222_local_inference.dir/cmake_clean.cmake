file(REMOVE_RECURSE
  "../bench/bench_sec222_local_inference"
  "../bench/bench_sec222_local_inference.pdb"
  "CMakeFiles/bench_sec222_local_inference.dir/bench_sec222_local_inference.cc.o"
  "CMakeFiles/bench_sec222_local_inference.dir/bench_sec222_local_inference.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec222_local_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
