# Empty dependencies file for bench_sec222_local_inference.
# This may be replaced when dependencies are built.
