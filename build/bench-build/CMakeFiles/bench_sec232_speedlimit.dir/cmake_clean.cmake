file(REMOVE_RECURSE
  "../bench/bench_sec232_speedlimit"
  "../bench/bench_sec232_speedlimit.pdb"
  "CMakeFiles/bench_sec232_speedlimit.dir/bench_sec232_speedlimit.cc.o"
  "CMakeFiles/bench_sec232_speedlimit.dir/bench_sec232_speedlimit.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec232_speedlimit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
