# Empty compiler generated dependencies file for bench_sec232_speedlimit.
# This may be replaced when dependencies are built.
