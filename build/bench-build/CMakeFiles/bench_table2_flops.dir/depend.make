# Empty dependencies file for bench_table2_flops.
# This may be replaced when dependencies are built.
