file(REMOVE_RECURSE
  "../bench/bench_table2_flops"
  "../bench/bench_table2_flops.pdb"
  "CMakeFiles/bench_table2_flops.dir/bench_table2_flops.cc.o"
  "CMakeFiles/bench_table2_flops.dir/bench_table2_flops.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_flops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
