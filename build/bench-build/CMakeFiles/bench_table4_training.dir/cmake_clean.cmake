file(REMOVE_RECURSE
  "../bench/bench_table4_training"
  "../bench/bench_table4_training.pdb"
  "CMakeFiles/bench_table4_training.dir/bench_table4_training.cc.o"
  "CMakeFiles/bench_table4_training.dir/bench_table4_training.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
