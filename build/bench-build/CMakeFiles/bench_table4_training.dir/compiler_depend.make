# Empty compiler generated dependencies file for bench_table4_training.
# This may be replaced when dependencies are built.
