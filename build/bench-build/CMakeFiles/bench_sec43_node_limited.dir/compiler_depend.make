# Empty compiler generated dependencies file for bench_sec43_node_limited.
# This may be replaced when dependencies are built.
