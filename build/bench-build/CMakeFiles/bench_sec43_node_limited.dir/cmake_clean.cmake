file(REMOVE_RECURSE
  "../bench/bench_sec43_node_limited"
  "../bench/bench_sec43_node_limited.pdb"
  "CMakeFiles/bench_sec43_node_limited.dir/bench_sec43_node_limited.cc.o"
  "CMakeFiles/bench_sec43_node_limited.dir/bench_sec43_node_limited.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec43_node_limited.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
