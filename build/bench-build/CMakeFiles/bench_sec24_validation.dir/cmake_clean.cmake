file(REMOVE_RECURSE
  "../bench/bench_sec24_validation"
  "../bench/bench_sec24_validation.pdb"
  "CMakeFiles/bench_sec24_validation.dir/bench_sec24_validation.cc.o"
  "CMakeFiles/bench_sec24_validation.dir/bench_sec24_validation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec24_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
