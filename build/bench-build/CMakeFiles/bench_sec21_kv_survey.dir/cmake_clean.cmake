file(REMOVE_RECURSE
  "../bench/bench_sec21_kv_survey"
  "../bench/bench_sec21_kv_survey.pdb"
  "CMakeFiles/bench_sec21_kv_survey.dir/bench_sec21_kv_survey.cc.o"
  "CMakeFiles/bench_sec21_kv_survey.dir/bench_sec21_kv_survey.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec21_kv_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
