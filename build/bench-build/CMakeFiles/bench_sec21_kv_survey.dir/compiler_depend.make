# Empty compiler generated dependencies file for bench_sec21_kv_survey.
# This may be replaced when dependencies are built.
