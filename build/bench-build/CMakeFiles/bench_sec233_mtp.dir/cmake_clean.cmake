file(REMOVE_RECURSE
  "../bench/bench_sec233_mtp"
  "../bench/bench_sec233_mtp.pdb"
  "CMakeFiles/bench_sec233_mtp.dir/bench_sec233_mtp.cc.o"
  "CMakeFiles/bench_sec233_mtp.dir/bench_sec233_mtp.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec233_mtp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
