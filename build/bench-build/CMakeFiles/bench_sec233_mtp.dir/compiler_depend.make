# Empty compiler generated dependencies file for bench_sec233_mtp.
# This may be replaced when dependencies are built.
