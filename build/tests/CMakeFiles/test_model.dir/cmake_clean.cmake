file(REMOVE_RECURSE
  "CMakeFiles/test_model.dir/model/test_attention_ref.cc.o"
  "CMakeFiles/test_model.dir/model/test_attention_ref.cc.o.d"
  "CMakeFiles/test_model.dir/model/test_config.cc.o"
  "CMakeFiles/test_model.dir/model/test_config.cc.o.d"
  "CMakeFiles/test_model.dir/model/test_flops.cc.o"
  "CMakeFiles/test_model.dir/model/test_flops.cc.o.d"
  "CMakeFiles/test_model.dir/model/test_kv_cache.cc.o"
  "CMakeFiles/test_model.dir/model/test_kv_cache.cc.o.d"
  "CMakeFiles/test_model.dir/model/test_params.cc.o"
  "CMakeFiles/test_model.dir/model/test_params.cc.o.d"
  "CMakeFiles/test_model.dir/model/test_tiny_transformer.cc.o"
  "CMakeFiles/test_model.dir/model/test_tiny_transformer.cc.o.d"
  "test_model"
  "test_model.pdb"
  "test_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
