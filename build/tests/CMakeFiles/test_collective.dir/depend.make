# Empty dependencies file for test_collective.
# This may be replaced when dependencies are built.
