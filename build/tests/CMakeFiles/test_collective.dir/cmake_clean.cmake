file(REMOVE_RECURSE
  "CMakeFiles/test_collective.dir/collective/test_patterns.cc.o"
  "CMakeFiles/test_collective.dir/collective/test_patterns.cc.o.d"
  "test_collective"
  "test_collective.pdb"
  "test_collective[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_collective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
