file(REMOVE_RECURSE
  "CMakeFiles/test_inference.dir/inference/test_disaggregation.cc.o"
  "CMakeFiles/test_inference.dir/inference/test_disaggregation.cc.o.d"
  "CMakeFiles/test_inference.dir/inference/test_inference.cc.o"
  "CMakeFiles/test_inference.dir/inference/test_inference.cc.o.d"
  "test_inference"
  "test_inference.pdb"
  "test_inference[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
