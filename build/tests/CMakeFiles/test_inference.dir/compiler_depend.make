# Empty compiler generated dependencies file for test_inference.
# This may be replaced when dependencies are built.
