# Empty dependencies file for test_numerics.
# This may be replaced when dependencies are built.
