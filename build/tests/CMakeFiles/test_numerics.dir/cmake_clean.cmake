file(REMOVE_RECURSE
  "CMakeFiles/test_numerics.dir/numerics/test_error.cc.o"
  "CMakeFiles/test_numerics.dir/numerics/test_error.cc.o.d"
  "CMakeFiles/test_numerics.dir/numerics/test_fp22.cc.o"
  "CMakeFiles/test_numerics.dir/numerics/test_fp22.cc.o.d"
  "CMakeFiles/test_numerics.dir/numerics/test_gemm.cc.o"
  "CMakeFiles/test_numerics.dir/numerics/test_gemm.cc.o.d"
  "CMakeFiles/test_numerics.dir/numerics/test_logfmt.cc.o"
  "CMakeFiles/test_numerics.dir/numerics/test_logfmt.cc.o.d"
  "CMakeFiles/test_numerics.dir/numerics/test_minifloat.cc.o"
  "CMakeFiles/test_numerics.dir/numerics/test_minifloat.cc.o.d"
  "CMakeFiles/test_numerics.dir/numerics/test_quantize.cc.o"
  "CMakeFiles/test_numerics.dir/numerics/test_quantize.cc.o.d"
  "test_numerics"
  "test_numerics.pdb"
  "test_numerics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_numerics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
