file(REMOVE_RECURSE
  "CMakeFiles/test_ep.dir/ep/test_ep.cc.o"
  "CMakeFiles/test_ep.dir/ep/test_ep.cc.o.d"
  "CMakeFiles/test_ep.dir/ep/test_innetwork.cc.o"
  "CMakeFiles/test_ep.dir/ep/test_innetwork.cc.o.d"
  "CMakeFiles/test_ep.dir/ep/test_offload.cc.o"
  "CMakeFiles/test_ep.dir/ep/test_offload.cc.o.d"
  "test_ep"
  "test_ep.pdb"
  "test_ep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
