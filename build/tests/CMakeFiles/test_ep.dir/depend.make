# Empty dependencies file for test_ep.
# This may be replaced when dependencies are built.
