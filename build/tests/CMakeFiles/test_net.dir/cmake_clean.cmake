file(REMOVE_RECURSE
  "CMakeFiles/test_net.dir/net/test_cluster.cc.o"
  "CMakeFiles/test_net.dir/net/test_cluster.cc.o.d"
  "CMakeFiles/test_net.dir/net/test_contention.cc.o"
  "CMakeFiles/test_net.dir/net/test_contention.cc.o.d"
  "CMakeFiles/test_net.dir/net/test_cost.cc.o"
  "CMakeFiles/test_net.dir/net/test_cost.cc.o.d"
  "CMakeFiles/test_net.dir/net/test_flow.cc.o"
  "CMakeFiles/test_net.dir/net/test_flow.cc.o.d"
  "CMakeFiles/test_net.dir/net/test_graph.cc.o"
  "CMakeFiles/test_net.dir/net/test_graph.cc.o.d"
  "CMakeFiles/test_net.dir/net/test_ordering_incast.cc.o"
  "CMakeFiles/test_net.dir/net/test_ordering_incast.cc.o.d"
  "CMakeFiles/test_net.dir/net/test_slimfly_dragonfly.cc.o"
  "CMakeFiles/test_net.dir/net/test_slimfly_dragonfly.cc.o.d"
  "test_net"
  "test_net.pdb"
  "test_net[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
