file(REMOVE_RECURSE
  "CMakeFiles/test_moe.dir/moe/test_bias_balancer.cc.o"
  "CMakeFiles/test_moe.dir/moe/test_bias_balancer.cc.o.d"
  "CMakeFiles/test_moe.dir/moe/test_eplb.cc.o"
  "CMakeFiles/test_moe.dir/moe/test_eplb.cc.o.d"
  "CMakeFiles/test_moe.dir/moe/test_gate.cc.o"
  "CMakeFiles/test_moe.dir/moe/test_gate.cc.o.d"
  "CMakeFiles/test_moe.dir/moe/test_routing.cc.o"
  "CMakeFiles/test_moe.dir/moe/test_routing.cc.o.d"
  "test_moe"
  "test_moe.pdb"
  "test_moe[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_moe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
