# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_numerics[1]_include.cmake")
include("/root/repo/build/tests/test_model[1]_include.cmake")
include("/root/repo/build/tests/test_moe[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_collective[1]_include.cmake")
include("/root/repo/build/tests/test_ep[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_inference[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
