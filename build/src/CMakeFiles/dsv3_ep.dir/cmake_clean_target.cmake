file(REMOVE_RECURSE
  "libdsv3_ep.a"
)
