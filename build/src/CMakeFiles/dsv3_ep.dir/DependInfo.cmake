
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ep/deepep.cc" "src/CMakeFiles/dsv3_ep.dir/ep/deepep.cc.o" "gcc" "src/CMakeFiles/dsv3_ep.dir/ep/deepep.cc.o.d"
  "/root/repo/src/ep/innetwork.cc" "src/CMakeFiles/dsv3_ep.dir/ep/innetwork.cc.o" "gcc" "src/CMakeFiles/dsv3_ep.dir/ep/innetwork.cc.o.d"
  "/root/repo/src/ep/offload.cc" "src/CMakeFiles/dsv3_ep.dir/ep/offload.cc.o" "gcc" "src/CMakeFiles/dsv3_ep.dir/ep/offload.cc.o.d"
  "/root/repo/src/ep/speed_limit.cc" "src/CMakeFiles/dsv3_ep.dir/ep/speed_limit.cc.o" "gcc" "src/CMakeFiles/dsv3_ep.dir/ep/speed_limit.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dsv3_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dsv3_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dsv3_moe.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dsv3_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dsv3_numerics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
