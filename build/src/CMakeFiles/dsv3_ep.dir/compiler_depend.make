# Empty compiler generated dependencies file for dsv3_ep.
# This may be replaced when dependencies are built.
