file(REMOVE_RECURSE
  "CMakeFiles/dsv3_ep.dir/ep/deepep.cc.o"
  "CMakeFiles/dsv3_ep.dir/ep/deepep.cc.o.d"
  "CMakeFiles/dsv3_ep.dir/ep/innetwork.cc.o"
  "CMakeFiles/dsv3_ep.dir/ep/innetwork.cc.o.d"
  "CMakeFiles/dsv3_ep.dir/ep/offload.cc.o"
  "CMakeFiles/dsv3_ep.dir/ep/offload.cc.o.d"
  "CMakeFiles/dsv3_ep.dir/ep/speed_limit.cc.o"
  "CMakeFiles/dsv3_ep.dir/ep/speed_limit.cc.o.d"
  "libdsv3_ep.a"
  "libdsv3_ep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsv3_ep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
