file(REMOVE_RECURSE
  "libdsv3_core.a"
)
