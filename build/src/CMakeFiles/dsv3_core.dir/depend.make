# Empty dependencies file for dsv3_core.
# This may be replaced when dependencies are built.
