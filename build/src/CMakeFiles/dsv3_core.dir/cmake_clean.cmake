file(REMOVE_RECURSE
  "CMakeFiles/dsv3_core.dir/core/report_extensions.cc.o"
  "CMakeFiles/dsv3_core.dir/core/report_extensions.cc.o.d"
  "CMakeFiles/dsv3_core.dir/core/report_model.cc.o"
  "CMakeFiles/dsv3_core.dir/core/report_model.cc.o.d"
  "CMakeFiles/dsv3_core.dir/core/report_net.cc.o"
  "CMakeFiles/dsv3_core.dir/core/report_net.cc.o.d"
  "CMakeFiles/dsv3_core.dir/core/report_numerics.cc.o"
  "CMakeFiles/dsv3_core.dir/core/report_numerics.cc.o.d"
  "CMakeFiles/dsv3_core.dir/core/report_training.cc.o"
  "CMakeFiles/dsv3_core.dir/core/report_training.cc.o.d"
  "libdsv3_core.a"
  "libdsv3_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsv3_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
