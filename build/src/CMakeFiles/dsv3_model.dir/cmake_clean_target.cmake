file(REMOVE_RECURSE
  "libdsv3_model.a"
)
