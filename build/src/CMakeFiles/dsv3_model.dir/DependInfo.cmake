
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/attention_ref.cc" "src/CMakeFiles/dsv3_model.dir/model/attention_ref.cc.o" "gcc" "src/CMakeFiles/dsv3_model.dir/model/attention_ref.cc.o.d"
  "/root/repo/src/model/config.cc" "src/CMakeFiles/dsv3_model.dir/model/config.cc.o" "gcc" "src/CMakeFiles/dsv3_model.dir/model/config.cc.o.d"
  "/root/repo/src/model/flops.cc" "src/CMakeFiles/dsv3_model.dir/model/flops.cc.o" "gcc" "src/CMakeFiles/dsv3_model.dir/model/flops.cc.o.d"
  "/root/repo/src/model/hardware.cc" "src/CMakeFiles/dsv3_model.dir/model/hardware.cc.o" "gcc" "src/CMakeFiles/dsv3_model.dir/model/hardware.cc.o.d"
  "/root/repo/src/model/kv_cache.cc" "src/CMakeFiles/dsv3_model.dir/model/kv_cache.cc.o" "gcc" "src/CMakeFiles/dsv3_model.dir/model/kv_cache.cc.o.d"
  "/root/repo/src/model/params.cc" "src/CMakeFiles/dsv3_model.dir/model/params.cc.o" "gcc" "src/CMakeFiles/dsv3_model.dir/model/params.cc.o.d"
  "/root/repo/src/model/tiny_transformer.cc" "src/CMakeFiles/dsv3_model.dir/model/tiny_transformer.cc.o" "gcc" "src/CMakeFiles/dsv3_model.dir/model/tiny_transformer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dsv3_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dsv3_numerics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dsv3_moe.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
