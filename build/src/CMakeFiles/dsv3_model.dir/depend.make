# Empty dependencies file for dsv3_model.
# This may be replaced when dependencies are built.
