file(REMOVE_RECURSE
  "CMakeFiles/dsv3_model.dir/model/attention_ref.cc.o"
  "CMakeFiles/dsv3_model.dir/model/attention_ref.cc.o.d"
  "CMakeFiles/dsv3_model.dir/model/config.cc.o"
  "CMakeFiles/dsv3_model.dir/model/config.cc.o.d"
  "CMakeFiles/dsv3_model.dir/model/flops.cc.o"
  "CMakeFiles/dsv3_model.dir/model/flops.cc.o.d"
  "CMakeFiles/dsv3_model.dir/model/hardware.cc.o"
  "CMakeFiles/dsv3_model.dir/model/hardware.cc.o.d"
  "CMakeFiles/dsv3_model.dir/model/kv_cache.cc.o"
  "CMakeFiles/dsv3_model.dir/model/kv_cache.cc.o.d"
  "CMakeFiles/dsv3_model.dir/model/params.cc.o"
  "CMakeFiles/dsv3_model.dir/model/params.cc.o.d"
  "CMakeFiles/dsv3_model.dir/model/tiny_transformer.cc.o"
  "CMakeFiles/dsv3_model.dir/model/tiny_transformer.cc.o.d"
  "libdsv3_model.a"
  "libdsv3_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsv3_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
