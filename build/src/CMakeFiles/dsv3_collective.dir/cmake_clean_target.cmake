file(REMOVE_RECURSE
  "libdsv3_collective.a"
)
