file(REMOVE_RECURSE
  "CMakeFiles/dsv3_collective.dir/collective/patterns.cc.o"
  "CMakeFiles/dsv3_collective.dir/collective/patterns.cc.o.d"
  "libdsv3_collective.a"
  "libdsv3_collective.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsv3_collective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
