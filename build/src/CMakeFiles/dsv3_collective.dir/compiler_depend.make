# Empty compiler generated dependencies file for dsv3_collective.
# This may be replaced when dependencies are built.
