# Empty compiler generated dependencies file for dsv3_common.
# This may be replaced when dependencies are built.
