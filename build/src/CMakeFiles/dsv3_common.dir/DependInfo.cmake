
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/dsv3_common.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/dsv3_common.dir/common/logging.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/dsv3_common.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/dsv3_common.dir/common/rng.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/dsv3_common.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/dsv3_common.dir/common/stats.cc.o.d"
  "/root/repo/src/common/table.cc" "src/CMakeFiles/dsv3_common.dir/common/table.cc.o" "gcc" "src/CMakeFiles/dsv3_common.dir/common/table.cc.o.d"
  "/root/repo/src/common/units.cc" "src/CMakeFiles/dsv3_common.dir/common/units.cc.o" "gcc" "src/CMakeFiles/dsv3_common.dir/common/units.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
