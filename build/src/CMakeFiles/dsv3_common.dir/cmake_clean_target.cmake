file(REMOVE_RECURSE
  "libdsv3_common.a"
)
