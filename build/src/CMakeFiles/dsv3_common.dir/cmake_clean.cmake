file(REMOVE_RECURSE
  "CMakeFiles/dsv3_common.dir/common/logging.cc.o"
  "CMakeFiles/dsv3_common.dir/common/logging.cc.o.d"
  "CMakeFiles/dsv3_common.dir/common/rng.cc.o"
  "CMakeFiles/dsv3_common.dir/common/rng.cc.o.d"
  "CMakeFiles/dsv3_common.dir/common/stats.cc.o"
  "CMakeFiles/dsv3_common.dir/common/stats.cc.o.d"
  "CMakeFiles/dsv3_common.dir/common/table.cc.o"
  "CMakeFiles/dsv3_common.dir/common/table.cc.o.d"
  "CMakeFiles/dsv3_common.dir/common/units.cc.o"
  "CMakeFiles/dsv3_common.dir/common/units.cc.o.d"
  "libdsv3_common.a"
  "libdsv3_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsv3_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
