
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/inference/disaggregation.cc" "src/CMakeFiles/dsv3_inference.dir/inference/disaggregation.cc.o" "gcc" "src/CMakeFiles/dsv3_inference.dir/inference/disaggregation.cc.o.d"
  "/root/repo/src/inference/mtp.cc" "src/CMakeFiles/dsv3_inference.dir/inference/mtp.cc.o" "gcc" "src/CMakeFiles/dsv3_inference.dir/inference/mtp.cc.o.d"
  "/root/repo/src/inference/overlap.cc" "src/CMakeFiles/dsv3_inference.dir/inference/overlap.cc.o" "gcc" "src/CMakeFiles/dsv3_inference.dir/inference/overlap.cc.o.d"
  "/root/repo/src/inference/roofline.cc" "src/CMakeFiles/dsv3_inference.dir/inference/roofline.cc.o" "gcc" "src/CMakeFiles/dsv3_inference.dir/inference/roofline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dsv3_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dsv3_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dsv3_ep.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dsv3_numerics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dsv3_moe.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dsv3_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
