file(REMOVE_RECURSE
  "CMakeFiles/dsv3_inference.dir/inference/disaggregation.cc.o"
  "CMakeFiles/dsv3_inference.dir/inference/disaggregation.cc.o.d"
  "CMakeFiles/dsv3_inference.dir/inference/mtp.cc.o"
  "CMakeFiles/dsv3_inference.dir/inference/mtp.cc.o.d"
  "CMakeFiles/dsv3_inference.dir/inference/overlap.cc.o"
  "CMakeFiles/dsv3_inference.dir/inference/overlap.cc.o.d"
  "CMakeFiles/dsv3_inference.dir/inference/roofline.cc.o"
  "CMakeFiles/dsv3_inference.dir/inference/roofline.cc.o.d"
  "libdsv3_inference.a"
  "libdsv3_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsv3_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
