file(REMOVE_RECURSE
  "libdsv3_inference.a"
)
