# Empty dependencies file for dsv3_inference.
# This may be replaced when dependencies are built.
