file(REMOVE_RECURSE
  "libdsv3_numerics.a"
)
