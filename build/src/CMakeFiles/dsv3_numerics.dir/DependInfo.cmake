
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/numerics/error.cc" "src/CMakeFiles/dsv3_numerics.dir/numerics/error.cc.o" "gcc" "src/CMakeFiles/dsv3_numerics.dir/numerics/error.cc.o.d"
  "/root/repo/src/numerics/fp22.cc" "src/CMakeFiles/dsv3_numerics.dir/numerics/fp22.cc.o" "gcc" "src/CMakeFiles/dsv3_numerics.dir/numerics/fp22.cc.o.d"
  "/root/repo/src/numerics/gemm.cc" "src/CMakeFiles/dsv3_numerics.dir/numerics/gemm.cc.o" "gcc" "src/CMakeFiles/dsv3_numerics.dir/numerics/gemm.cc.o.d"
  "/root/repo/src/numerics/logfmt.cc" "src/CMakeFiles/dsv3_numerics.dir/numerics/logfmt.cc.o" "gcc" "src/CMakeFiles/dsv3_numerics.dir/numerics/logfmt.cc.o.d"
  "/root/repo/src/numerics/matrix.cc" "src/CMakeFiles/dsv3_numerics.dir/numerics/matrix.cc.o" "gcc" "src/CMakeFiles/dsv3_numerics.dir/numerics/matrix.cc.o.d"
  "/root/repo/src/numerics/minifloat.cc" "src/CMakeFiles/dsv3_numerics.dir/numerics/minifloat.cc.o" "gcc" "src/CMakeFiles/dsv3_numerics.dir/numerics/minifloat.cc.o.d"
  "/root/repo/src/numerics/quantize.cc" "src/CMakeFiles/dsv3_numerics.dir/numerics/quantize.cc.o" "gcc" "src/CMakeFiles/dsv3_numerics.dir/numerics/quantize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dsv3_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
