# Empty compiler generated dependencies file for dsv3_numerics.
# This may be replaced when dependencies are built.
