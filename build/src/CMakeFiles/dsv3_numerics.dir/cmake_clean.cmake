file(REMOVE_RECURSE
  "CMakeFiles/dsv3_numerics.dir/numerics/error.cc.o"
  "CMakeFiles/dsv3_numerics.dir/numerics/error.cc.o.d"
  "CMakeFiles/dsv3_numerics.dir/numerics/fp22.cc.o"
  "CMakeFiles/dsv3_numerics.dir/numerics/fp22.cc.o.d"
  "CMakeFiles/dsv3_numerics.dir/numerics/gemm.cc.o"
  "CMakeFiles/dsv3_numerics.dir/numerics/gemm.cc.o.d"
  "CMakeFiles/dsv3_numerics.dir/numerics/logfmt.cc.o"
  "CMakeFiles/dsv3_numerics.dir/numerics/logfmt.cc.o.d"
  "CMakeFiles/dsv3_numerics.dir/numerics/matrix.cc.o"
  "CMakeFiles/dsv3_numerics.dir/numerics/matrix.cc.o.d"
  "CMakeFiles/dsv3_numerics.dir/numerics/minifloat.cc.o"
  "CMakeFiles/dsv3_numerics.dir/numerics/minifloat.cc.o.d"
  "CMakeFiles/dsv3_numerics.dir/numerics/quantize.cc.o"
  "CMakeFiles/dsv3_numerics.dir/numerics/quantize.cc.o.d"
  "libdsv3_numerics.a"
  "libdsv3_numerics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsv3_numerics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
