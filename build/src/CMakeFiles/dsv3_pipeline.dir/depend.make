# Empty dependencies file for dsv3_pipeline.
# This may be replaced when dependencies are built.
