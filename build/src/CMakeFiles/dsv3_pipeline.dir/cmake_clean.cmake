file(REMOVE_RECURSE
  "CMakeFiles/dsv3_pipeline.dir/pipeline/reliability.cc.o"
  "CMakeFiles/dsv3_pipeline.dir/pipeline/reliability.cc.o.d"
  "CMakeFiles/dsv3_pipeline.dir/pipeline/schedule.cc.o"
  "CMakeFiles/dsv3_pipeline.dir/pipeline/schedule.cc.o.d"
  "CMakeFiles/dsv3_pipeline.dir/pipeline/training.cc.o"
  "CMakeFiles/dsv3_pipeline.dir/pipeline/training.cc.o.d"
  "libdsv3_pipeline.a"
  "libdsv3_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsv3_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
