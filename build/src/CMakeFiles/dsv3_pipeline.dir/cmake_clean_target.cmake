file(REMOVE_RECURSE
  "libdsv3_pipeline.a"
)
