
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pipeline/reliability.cc" "src/CMakeFiles/dsv3_pipeline.dir/pipeline/reliability.cc.o" "gcc" "src/CMakeFiles/dsv3_pipeline.dir/pipeline/reliability.cc.o.d"
  "/root/repo/src/pipeline/schedule.cc" "src/CMakeFiles/dsv3_pipeline.dir/pipeline/schedule.cc.o" "gcc" "src/CMakeFiles/dsv3_pipeline.dir/pipeline/schedule.cc.o.d"
  "/root/repo/src/pipeline/training.cc" "src/CMakeFiles/dsv3_pipeline.dir/pipeline/training.cc.o" "gcc" "src/CMakeFiles/dsv3_pipeline.dir/pipeline/training.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dsv3_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dsv3_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dsv3_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dsv3_collective.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dsv3_numerics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dsv3_moe.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
