
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/cluster.cc" "src/CMakeFiles/dsv3_net.dir/net/cluster.cc.o" "gcc" "src/CMakeFiles/dsv3_net.dir/net/cluster.cc.o.d"
  "/root/repo/src/net/contention.cc" "src/CMakeFiles/dsv3_net.dir/net/contention.cc.o" "gcc" "src/CMakeFiles/dsv3_net.dir/net/contention.cc.o.d"
  "/root/repo/src/net/cost.cc" "src/CMakeFiles/dsv3_net.dir/net/cost.cc.o" "gcc" "src/CMakeFiles/dsv3_net.dir/net/cost.cc.o.d"
  "/root/repo/src/net/dragonfly.cc" "src/CMakeFiles/dsv3_net.dir/net/dragonfly.cc.o" "gcc" "src/CMakeFiles/dsv3_net.dir/net/dragonfly.cc.o.d"
  "/root/repo/src/net/flow.cc" "src/CMakeFiles/dsv3_net.dir/net/flow.cc.o" "gcc" "src/CMakeFiles/dsv3_net.dir/net/flow.cc.o.d"
  "/root/repo/src/net/graph.cc" "src/CMakeFiles/dsv3_net.dir/net/graph.cc.o" "gcc" "src/CMakeFiles/dsv3_net.dir/net/graph.cc.o.d"
  "/root/repo/src/net/incast.cc" "src/CMakeFiles/dsv3_net.dir/net/incast.cc.o" "gcc" "src/CMakeFiles/dsv3_net.dir/net/incast.cc.o.d"
  "/root/repo/src/net/ordering.cc" "src/CMakeFiles/dsv3_net.dir/net/ordering.cc.o" "gcc" "src/CMakeFiles/dsv3_net.dir/net/ordering.cc.o.d"
  "/root/repo/src/net/slimfly.cc" "src/CMakeFiles/dsv3_net.dir/net/slimfly.cc.o" "gcc" "src/CMakeFiles/dsv3_net.dir/net/slimfly.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dsv3_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
