file(REMOVE_RECURSE
  "libdsv3_net.a"
)
