# Empty dependencies file for dsv3_net.
# This may be replaced when dependencies are built.
