file(REMOVE_RECURSE
  "CMakeFiles/dsv3_net.dir/net/cluster.cc.o"
  "CMakeFiles/dsv3_net.dir/net/cluster.cc.o.d"
  "CMakeFiles/dsv3_net.dir/net/contention.cc.o"
  "CMakeFiles/dsv3_net.dir/net/contention.cc.o.d"
  "CMakeFiles/dsv3_net.dir/net/cost.cc.o"
  "CMakeFiles/dsv3_net.dir/net/cost.cc.o.d"
  "CMakeFiles/dsv3_net.dir/net/dragonfly.cc.o"
  "CMakeFiles/dsv3_net.dir/net/dragonfly.cc.o.d"
  "CMakeFiles/dsv3_net.dir/net/flow.cc.o"
  "CMakeFiles/dsv3_net.dir/net/flow.cc.o.d"
  "CMakeFiles/dsv3_net.dir/net/graph.cc.o"
  "CMakeFiles/dsv3_net.dir/net/graph.cc.o.d"
  "CMakeFiles/dsv3_net.dir/net/incast.cc.o"
  "CMakeFiles/dsv3_net.dir/net/incast.cc.o.d"
  "CMakeFiles/dsv3_net.dir/net/ordering.cc.o"
  "CMakeFiles/dsv3_net.dir/net/ordering.cc.o.d"
  "CMakeFiles/dsv3_net.dir/net/slimfly.cc.o"
  "CMakeFiles/dsv3_net.dir/net/slimfly.cc.o.d"
  "libdsv3_net.a"
  "libdsv3_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsv3_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
