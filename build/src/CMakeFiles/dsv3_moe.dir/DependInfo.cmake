
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/moe/bias_balancer.cc" "src/CMakeFiles/dsv3_moe.dir/moe/bias_balancer.cc.o" "gcc" "src/CMakeFiles/dsv3_moe.dir/moe/bias_balancer.cc.o.d"
  "/root/repo/src/moe/eplb.cc" "src/CMakeFiles/dsv3_moe.dir/moe/eplb.cc.o" "gcc" "src/CMakeFiles/dsv3_moe.dir/moe/eplb.cc.o.d"
  "/root/repo/src/moe/gate.cc" "src/CMakeFiles/dsv3_moe.dir/moe/gate.cc.o" "gcc" "src/CMakeFiles/dsv3_moe.dir/moe/gate.cc.o.d"
  "/root/repo/src/moe/placement.cc" "src/CMakeFiles/dsv3_moe.dir/moe/placement.cc.o" "gcc" "src/CMakeFiles/dsv3_moe.dir/moe/placement.cc.o.d"
  "/root/repo/src/moe/routing_stats.cc" "src/CMakeFiles/dsv3_moe.dir/moe/routing_stats.cc.o" "gcc" "src/CMakeFiles/dsv3_moe.dir/moe/routing_stats.cc.o.d"
  "/root/repo/src/moe/token_gen.cc" "src/CMakeFiles/dsv3_moe.dir/moe/token_gen.cc.o" "gcc" "src/CMakeFiles/dsv3_moe.dir/moe/token_gen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dsv3_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
