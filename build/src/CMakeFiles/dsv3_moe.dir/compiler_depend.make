# Empty compiler generated dependencies file for dsv3_moe.
# This may be replaced when dependencies are built.
