file(REMOVE_RECURSE
  "libdsv3_moe.a"
)
