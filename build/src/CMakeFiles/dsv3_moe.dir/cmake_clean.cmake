file(REMOVE_RECURSE
  "CMakeFiles/dsv3_moe.dir/moe/bias_balancer.cc.o"
  "CMakeFiles/dsv3_moe.dir/moe/bias_balancer.cc.o.d"
  "CMakeFiles/dsv3_moe.dir/moe/eplb.cc.o"
  "CMakeFiles/dsv3_moe.dir/moe/eplb.cc.o.d"
  "CMakeFiles/dsv3_moe.dir/moe/gate.cc.o"
  "CMakeFiles/dsv3_moe.dir/moe/gate.cc.o.d"
  "CMakeFiles/dsv3_moe.dir/moe/placement.cc.o"
  "CMakeFiles/dsv3_moe.dir/moe/placement.cc.o.d"
  "CMakeFiles/dsv3_moe.dir/moe/routing_stats.cc.o"
  "CMakeFiles/dsv3_moe.dir/moe/routing_stats.cc.o.d"
  "CMakeFiles/dsv3_moe.dir/moe/token_gen.cc.o"
  "CMakeFiles/dsv3_moe.dir/moe/token_gen.cc.o.d"
  "libdsv3_moe.a"
  "libdsv3_moe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsv3_moe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
